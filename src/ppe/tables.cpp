#include "ppe/tables.hpp"

#include <algorithm>
#include <bit>

#include "net/flow.hpp"

namespace flexsfp::ppe {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  return v <= 1 ? 1 : std::bit_ceil(v);
}

}  // namespace

ExactMatchTable::ExactMatchTable(std::string name, std::size_t capacity,
                                 std::uint32_t key_bits,
                                 std::uint32_t value_bits, std::size_t ways)
    : name_(std::move(name)),
      capacity_(capacity),
      key_bits_(key_bits),
      value_bits_(value_bits),
      ways_(std::max<std::size_t>(ways, 1)),
      bucket_count_(round_up_pow2((capacity + ways_ - 1) / ways_)),
      keys_(bucket_count_ * ways_, 0),
      values_(bucket_count_ * ways_, 0),
      valid_(bucket_count_ * ways_, 0) {}

std::array<std::size_t, 2> ExactMatchTable::bucket_indices(
    std::uint64_t key) const {
  // Two independent hash functions: d-left / two-choice placement keeps the
  // table usable to high load factors, as hardware exact-match pipelines do
  // with dual-ported SRAM banks.
  const std::size_t first = net::fnv1a_u64(key) & (bucket_count_ - 1);
  std::size_t second = net::murmur3_u64(key) & (bucket_count_ - 1);
  if (second == first) second = (second + 1) & (bucket_count_ - 1);
  return {first, second};
}

bool ExactMatchTable::insert(std::uint64_t key, std::uint64_t value) {
  constexpr std::size_t no_slot = ~std::size_t{0};
  const auto buckets = bucket_indices(key);
  // Pass 1: update in place, wherever the key already lives.
  for (const std::size_t bucket : buckets) {
    const std::size_t base = bucket * ways_;
    for (std::size_t way = 0; way < ways_; ++way) {
      if (valid_[base + way] && keys_[base + way] == key) {
        values_[base + way] = value;
        ++generation_;
        return true;
      }
    }
  }
  if (size_ >= capacity_) return false;
  // Pass 2: place into the less-loaded candidate bucket.
  std::size_t chosen = no_slot;
  std::size_t best_load = ways_ + 1;
  for (const std::size_t bucket : buckets) {
    const std::size_t base = bucket * ways_;
    std::size_t load = 0;
    std::size_t free_slot = no_slot;
    for (std::size_t way = 0; way < ways_; ++way) {
      if (valid_[base + way]) {
        ++load;
      } else if (free_slot == no_slot) {
        free_slot = base + way;
      }
    }
    if (free_slot != no_slot && load < best_load) {
      best_load = load;
      chosen = free_slot;
    }
  }
  if (chosen == no_slot) {
    // Cuckoo relocation: the control plane (not the datapath) walks a
    // bounded displacement chain, moving a victim to its alternate bucket
    // to make room. Bounded so a pathological key set cannot loop forever.
    if (!cuckoo_make_room(buckets[0], /*depth=*/0)) {
      ++bucket_overflows_;
      return false;
    }
    // A way in the first bucket is now free.
    const std::size_t base = buckets[0] * ways_;
    for (std::size_t way = 0; way < ways_; ++way) {
      if (!valid_[base + way]) {
        chosen = base + way;
        break;
      }
    }
    if (chosen == no_slot) {
      ++bucket_overflows_;
      return false;
    }
  }
  keys_[chosen] = key;
  values_[chosen] = value;
  valid_[chosen] = 1;
  ++size_;
  ++generation_;
  return true;
}

bool ExactMatchTable::cuckoo_make_room(std::size_t bucket, int depth) {
  constexpr int max_depth = 8;
  if (depth >= max_depth) return false;
  const std::size_t base = bucket * ways_;
  const auto relocate = [this](std::size_t from, std::size_t to) {
    keys_[to] = keys_[from];
    values_[to] = values_[from];
    valid_[to] = 1;
    valid_[from] = 0;
  };
  // Try a cheap move first: any resident whose alternate bucket has space.
  for (std::size_t way = 0; way < ways_; ++way) {
    const std::size_t slot = base + way;
    const auto alternates = bucket_indices(keys_[slot]);
    const std::size_t other =
        alternates[0] == bucket ? alternates[1] : alternates[0];
    const std::size_t other_base = other * ways_;
    for (std::size_t other_way = 0; other_way < ways_; ++other_way) {
      if (!valid_[other_base + other_way]) {
        relocate(slot, other_base + other_way);
        return true;
      }
    }
  }
  // No direct move: recurse on the first victim's alternate bucket.
  const auto alternates = bucket_indices(keys_[base]);
  const std::size_t other =
      alternates[0] == bucket ? alternates[1] : alternates[0];
  if (!cuckoo_make_room(other, depth + 1)) return false;
  const std::size_t other_base = other * ways_;
  for (std::size_t other_way = 0; other_way < ways_; ++other_way) {
    if (!valid_[other_base + other_way]) {
      relocate(base, other_base + other_way);
      return true;
    }
  }
  return false;
}

std::optional<std::uint64_t> ExactMatchTable::probe(
    const std::array<std::size_t, 2>& buckets, std::uint64_t key) const {
  for (const std::size_t bucket : buckets) {
    const std::size_t base = bucket * ways_;
    for (std::size_t way = 0; way < ways_; ++way) {
      if (valid_[base + way] && keys_[base + way] == key) {
        return values_[base + way];
      }
    }
  }
  return std::nullopt;
}

std::optional<std::uint64_t> ExactMatchTable::lookup(std::uint64_t key) const {
  return probe(bucket_indices(key), key);
}

void ExactMatchTable::lookup_batch(const std::uint64_t* keys,
                                   std::optional<std::uint64_t>* out,
                                   std::size_t n) const {
  if (n == 0) return;
  auto buckets = bucket_indices(keys[0]);
  for (std::size_t i = 0; i < n; ++i) {
    const auto current = buckets;
    if (i + 1 < n) {
      // Hash the next key and touch its bucket lines while the current
      // compare is in flight — the probe never waits on a cold SRAM row.
      buckets = bucket_indices(keys[i + 1]);
      __builtin_prefetch(&keys_[buckets[0] * ways_]);
      __builtin_prefetch(&keys_[buckets[1] * ways_]);
      __builtin_prefetch(&valid_[buckets[0] * ways_]);
      __builtin_prefetch(&valid_[buckets[1] * ways_]);
    }
    out[i] = probe(current, keys[i]);
  }
}

bool ExactMatchTable::erase(std::uint64_t key) {
  for (const std::size_t bucket : bucket_indices(key)) {
    const std::size_t base = bucket * ways_;
    for (std::size_t way = 0; way < ways_; ++way) {
      if (valid_[base + way] && keys_[base + way] == key) {
        valid_[base + way] = 0;
        --size_;
        ++generation_;
        return true;
      }
    }
  }
  return false;
}

void ExactMatchTable::clear() {
  std::fill(valid_.begin(), valid_.end(), std::uint8_t{0});
  size_ = 0;
  ++generation_;
}

void ExactMatchTable::for_each(
    const std::function<void(std::uint64_t, std::uint64_t)>& fn) const {
  for (std::size_t slot = 0; slot < keys_.size(); ++slot) {
    if (valid_[slot]) fn(keys_[slot], values_[slot]);
  }
}

TernaryTable::TernaryTable(std::string name, std::size_t capacity,
                           std::uint32_t key_bits)
    : name_(std::move(name)), capacity_(capacity), key_bits_(key_bits) {}

void TernaryTable::rebuild_mirror() {
  const std::size_t n = rules_.size();
  mask_hi_.resize(n);
  mask_lo_.resize(n);
  masked_value_hi_.resize(n);
  masked_value_lo_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    mask_hi_[i] = rules_[i].mask.hi;
    mask_lo_[i] = rules_[i].mask.lo;
    masked_value_hi_[i] = rules_[i].value.hi & rules_[i].mask.hi;
    masked_value_lo_[i] = rules_[i].value.lo & rules_[i].mask.lo;
  }
}

std::optional<std::uint64_t> TernaryTable::add_rule(TernaryRule rule) {
  if (rules_.size() >= capacity_) return std::nullopt;
  rule.rule_id = next_rule_id_++;
  // Keep the vector ordered by priority (desc), stable for equal priorities
  // (first-added wins), so match() is a straight scan.
  const auto pos = std::find_if(
      rules_.begin(), rules_.end(),
      [&rule](const TernaryRule& r) { return r.priority < rule.priority; });
  rules_.insert(pos, rule);
  rebuild_mirror();
  ++generation_;
  return rule.rule_id;
}

bool TernaryTable::erase_rule(std::uint64_t rule_id) {
  const auto it = std::find_if(
      rules_.begin(), rules_.end(),
      [rule_id](const TernaryRule& r) { return r.rule_id == rule_id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  rebuild_mirror();
  ++generation_;
  return true;
}

void TernaryTable::clear() {
  rules_.clear();
  rebuild_mirror();
  ++generation_;
}

const TernaryRule* TernaryTable::match(TernaryKey key) const {
  // Scan the SoA mirror (masks + pre-masked values, priority-desc order);
  // rules_ carries the full metadata for the winning index.
  const std::size_t n = rules_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if ((key.hi & mask_hi_[i]) == masked_value_hi_[i] &&
        (key.lo & mask_lo_[i]) == masked_value_lo_[i]) {
      return &rules_[i];
    }
  }
  return nullptr;
}

std::optional<std::uint64_t> TernaryTable::lookup(TernaryKey key) const {
  const TernaryRule* rule = match(key);
  return rule != nullptr ? std::optional{rule->result} : std::nullopt;
}

namespace {
/// Does `first` (earlier in match order) win over every key `second`
/// matches? True when first's mask is a subset of second's and the two
/// agree on every bit of first's mask.
bool rule_covers(const TernaryRule& first, const TernaryRule& second) {
  const bool mask_subset =
      (first.mask.hi & second.mask.hi) == first.mask.hi &&
      (first.mask.lo & second.mask.lo) == first.mask.lo;
  return mask_subset &&
         (first.value.hi & first.mask.hi) ==
             (second.value.hi & first.mask.hi) &&
         (first.value.lo & first.mask.lo) == (second.value.lo & first.mask.lo);
}
}  // namespace

std::size_t TernaryTable::shadowed_rule_count() const {
  std::size_t shadowed = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (rule_covers(rules_[j], rules_[i])) {
        ++shadowed;
        break;
      }
    }
  }
  return shadowed;
}

std::size_t TernaryTable::duplicate_rule_count() const {
  std::size_t duplicates = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (rules_[j].value == rules_[i].value &&
          rules_[j].mask == rules_[i].mask) {
        ++duplicates;
        break;
      }
    }
  }
  return duplicates;
}

std::vector<std::pair<std::uint16_t, std::uint16_t>> expand_port_range(
    std::uint16_t lo, std::uint16_t hi) {
  std::vector<std::pair<std::uint16_t, std::uint16_t>> out;
  if (lo > hi) return out;
  std::uint32_t start = lo;
  const std::uint32_t end = std::uint32_t{hi} + 1;  // half-open [start, end)
  while (start < end) {
    // Largest power-of-two block aligned at `start` that fits before `end`.
    std::uint32_t block = 1;
    while ((start & ((block << 1) - 1)) == 0 && start + (block << 1) <= end &&
           (block << 1) <= 0x10000) {
      block <<= 1;
    }
    const auto mask = static_cast<std::uint16_t>(~(block - 1) & 0xffff);
    out.emplace_back(static_cast<std::uint16_t>(start), mask);
    start += block;
  }
  return out;
}

LpmTable::LpmTable(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity) {}

void LpmTable::rebuild_mirror() {
  const std::size_t n = entries_.size();
  mask32_.resize(n);
  base_.resize(n);
  value_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Prefix addresses are canonicalized (host bits zero), so the stored
    // base equals address & mask and the scan test mirrors
    // Ipv4Prefix::contains exactly.
    mask32_[i] = entries_[i].prefix.mask();
    base_[i] = entries_[i].prefix.address().value();
    value_[i] = entries_[i].value;
  }
}

bool LpmTable::insert(net::Ipv4Prefix prefix, std::uint64_t value) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&prefix](const Entry& e) { return e.prefix == prefix; });
  if (it != entries_.end()) {
    it->value = value;
    rebuild_mirror();
    ++generation_;
    return true;
  }
  if (entries_.size() >= capacity_) return false;
  const auto pos = std::find_if(entries_.begin(), entries_.end(),
                                [&prefix](const Entry& e) {
                                  return e.prefix.length() < prefix.length();
                                });
  entries_.insert(pos, Entry{prefix, value});
  rebuild_mirror();
  ++generation_;
  return true;
}

bool LpmTable::erase(net::Ipv4Prefix prefix) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&prefix](const Entry& e) { return e.prefix == prefix; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  rebuild_mirror();
  ++generation_;
  return true;
}

std::optional<std::uint64_t> LpmTable::lookup(net::Ipv4Address addr) const {
  // Sorted by descending length: the first containing prefix (scanned on
  // the precomputed base/mask mirror) is the longest match.
  const std::uint32_t a = addr.value();
  const std::size_t n = base_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if ((a & mask32_[i]) == base_[i]) return value_[i];
  }
  return std::nullopt;
}

std::optional<std::uint64_t> LpmTable::lookup_exact(
    net::Ipv4Prefix prefix) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&prefix](const Entry& e) { return e.prefix == prefix; });
  return it != entries_.end() ? std::optional{it->value} : std::nullopt;
}

}  // namespace flexsfp::ppe
