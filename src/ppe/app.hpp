// The Packet Processing Engine application abstraction.
//
// An app is the unit the FlexSFP workflow deploys: "the developer writes the
// packet function ... the build framework integrates this into an
// architecture shell" (§4.2). Here an app is a C++ object with
//   * a per-packet process() function that may edit the frame in place,
//   * an FPGA resource estimate for a given datapath geometry,
//   * a control-plane surface (named tables and counters),
//   * config (de)serialization, which is what a "bitstream" carries.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hw/clock.hpp"
#include "hw/resources.hpp"
#include "net/packet.hpp"
#include "net/parser.hpp"
#include "ppe/counters.hpp"
#include "ppe/introspect.hpp"

namespace flexsfp::ppe {

/// What the pipeline does with the packet after the app ran.
enum class Verdict : std::uint8_t {
  forward,           // continue to the egress interface
  drop,              // silently discard
  to_control_plane,  // punt to the embedded CPU
};

[[nodiscard]] std::string to_string(Verdict verdict);

/// Per-packet working state handed through a chain of apps: the mutable
/// frame plus a lazily (re)built parse of it, so consecutive stages don't
/// pay for reparsing unless an earlier stage edited the bytes.
class PacketContext {
 public:
  explicit PacketContext(net::Packet& packet) : packet_(packet) {}

  [[nodiscard]] net::Packet& packet() { return packet_; }
  [[nodiscard]] const net::Packet& packet() const { return packet_; }
  [[nodiscard]] net::Bytes& bytes() { return packet_.data(); }

  /// Parsed view of the current bytes (parsed on first use).
  [[nodiscard]] const net::ParsedPacket& parsed();
  /// Call after editing bytes() so the next parsed() reflects the edit.
  void invalidate_parse() { parsed_.reset(); }

  /// Ask the engine to deliver a copy of this packet to the control plane
  /// in addition to the normal verdict (sampling/mirroring).
  void request_mirror() { mirror_ = true; }
  [[nodiscard]] bool mirror_requested() const { return mirror_; }

 private:
  net::Packet& packet_;
  std::optional<net::ParsedPacket> parsed_;
  bool mirror_ = false;
};

/// Base class for all PPE applications.
class PpeApp {
 public:
  virtual ~PpeApp() = default;

  /// Stable registry name ("nat", "acl", ...). Bitstreams reference it.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Process one packet; may edit ctx.bytes() (then call
  /// ctx.invalidate_parse()).
  [[nodiscard]] virtual Verdict process(PacketContext& ctx) = 0;

  /// Process a burst of packets with one virtual dispatch: out[i] receives
  /// the verdict for *ctxs[i]. The default walks the burst through
  /// process() while prefetching the next packet's header bytes, so apps
  /// only override when they can vectorize table probes (e.g. StaticNat's
  /// batched binding lookup). Overrides must be observably identical to the
  /// per-packet loop — the burst is a dispatch-amortization window, never a
  /// reordering or coalescing boundary.
  virtual void process_batch(PacketContext* const* ctxs, Verdict* out,
                             std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 1 < n) {
        __builtin_prefetch(ctxs[i + 1]->packet().data().data());
      }
      out[i] = process(*ctxs[i]);
    }
  }

  /// FPGA footprint of this app's logic for a datapath geometry.
  [[nodiscard]] virtual hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const = 0;

  /// Fixed pipeline depth in cycles added to every packet (parser +
  /// match + action + deparser register stages).
  [[nodiscard]] virtual std::uint64_t pipeline_latency_cycles() const {
    return 8;
  }

  // --- static introspection (deploy-time verification) --------------------
  /// Declared static profile of this stage: header reads/writes, table
  /// geometry, per-packet cycle cost. Derived from configuration only, so
  /// the analysis::PipelineVerifier can check a design before deployment.
  /// The default is deliberately conservative: it claims nothing beyond
  /// what the base class knows (wire-header reads, 1-cycle match-action).
  [[nodiscard]] virtual StageProfile profile() const;
  /// The stage sequence this app contributes to a pipeline — one entry for
  /// simple apps, one per stage for compositions (AppChain overrides).
  [[nodiscard]] virtual std::vector<StageProfile> stage_profiles() const;
  /// Visit the concrete stage apps in the same order (and flattening) as
  /// stage_profiles(): `this` for simple apps, each member stage for
  /// compositions. Lets deploy-time analyses that need more than the
  /// declared profile (e.g. the BPF abstract interpreter reading a stage's
  /// program) align an app with its profile entry.
  virtual void visit_stages(
      const std::function<void(const PpeApp&)>& visit) const {
    visit(*this);
  }

  /// Serialized configuration, the payload a bitstream carries. Empty means
  /// the app has no static configuration.
  [[nodiscard]] virtual net::Bytes serialize_config() const { return {}; }

  // --- control-plane surface ----------------------------------------------
  /// Names of runtime-updatable tables.
  [[nodiscard]] virtual std::vector<std::string> table_names() const {
    return {};
  }
  /// Insert/update `key -> value` in the named table. False on unknown
  /// table or table-full.
  virtual bool table_insert(std::string_view table, std::uint64_t key,
                            std::uint64_t value) {
    (void)table; (void)key; (void)value;
    return false;
  }
  virtual bool table_erase(std::string_view table, std::uint64_t key) {
    (void)table; (void)key;
    return false;
  }
  [[nodiscard]] virtual std::optional<std::uint64_t> table_lookup(
      std::string_view table, std::uint64_t key) const {
    (void)table; (void)key;
    return std::nullopt;
  }
  /// Snapshot of all counters for telemetry export.
  [[nodiscard]] virtual std::vector<CounterSnapshot> counters() const {
    return {};
  }

  /// Locate a stage by registry name — `this` for simple apps, a member
  /// stage for compositions (AppChain overrides). Lets control-plane
  /// services (e.g. the flow exporter) find the app they serve.
  [[nodiscard]] virtual PpeApp* find_stage(std::string_view stage_name) {
    return stage_name == name() ? this : nullptr;
  }

  PpeApp() = default;
  PpeApp(const PpeApp&) = delete;
  PpeApp& operator=(const PpeApp&) = delete;
};

using PpeAppPtr = std::unique_ptr<PpeApp>;

}  // namespace flexsfp::ppe
