#include "ppe/registry.hpp"

namespace flexsfp::ppe {

AppRegistry& AppRegistry::instance() {
  static AppRegistry registry;
  return registry;
}

void AppRegistry::register_app(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

PpeAppPtr AppRegistry::create(const std::string& name,
                              net::BytesView config) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second(config);
}

bool AppRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

std::vector<std::string> AppRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

bool register_ppe_app(const std::string& name, AppRegistry::Factory factory) {
  AppRegistry::instance().register_app(name, std::move(factory));
  return true;
}

}  // namespace flexsfp::ppe
