#include "ppe/counters.hpp"

#include <stdexcept>

namespace flexsfp::ppe {

CounterBank::CounterBank(std::string name, std::size_t count)
    : name_(std::move(name)), packets_(count, 0), bytes_(count, 0) {}

void CounterBank::add(std::size_t index, std::uint64_t bytes) {
  if (index >= packets_.size()) {
    throw std::out_of_range("CounterBank::add index " + std::to_string(index));
  }
  ++packets_[index];
  bytes_[index] += bytes;
}

std::uint64_t CounterBank::packets(std::size_t index) const {
  return index < packets_.size() ? packets_[index] : 0;
}

std::uint64_t CounterBank::bytes(std::size_t index) const {
  return index < bytes_.size() ? bytes_[index] : 0;
}

void CounterBank::clear() {
  std::fill(packets_.begin(), packets_.end(), 0);
  std::fill(bytes_.begin(), bytes_.end(), 0);
}

}  // namespace flexsfp::ppe
