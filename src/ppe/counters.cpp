#include "ppe/counters.hpp"

#include <stdexcept>

namespace flexsfp::ppe {

CounterBank::CounterBank(std::string name, std::size_t count)
    : name_(std::move(name)), packets_(count, 0), bytes_(count, 0) {}

void CounterBank::add(std::size_t index, std::uint64_t bytes) {
  if (index >= packets_.size()) {
    throw std::out_of_range("CounterBank::add index " + std::to_string(index));
  }
  ++packets_[index];
  bytes_[index] += bytes;
}

std::uint64_t CounterBank::packets(std::size_t index) const {
  return index < packets_.size() ? packets_[index] : 0;
}

std::uint64_t CounterBank::bytes(std::size_t index) const {
  return index < bytes_.size() ? bytes_[index] : 0;
}

void CounterBank::accumulate(std::size_t index, std::uint64_t packets,
                             std::uint64_t bytes) {
  if (index >= packets_.size()) {
    throw std::out_of_range("CounterBank::accumulate index " +
                            std::to_string(index));
  }
  packets_[index] += packets;
  bytes_[index] += bytes;
}

void CounterBank::merge(const CounterBank& other) {
  if (other.name_ != name_ || other.packets_.size() != packets_.size()) {
    throw std::invalid_argument("CounterBank::merge shape mismatch: " +
                                name_ + "[" + std::to_string(size()) +
                                "] vs " + other.name_ + "[" +
                                std::to_string(other.size()) + "]");
  }
  for (std::size_t i = 0; i < packets_.size(); ++i) {
    packets_[i] += other.packets_[i];
    bytes_[i] += other.bytes_[i];
  }
}

void CounterBank::clear() {
  std::fill(packets_.begin(), packets_.end(), 0);
  std::fill(bytes_.begin(), bytes_.end(), 0);
}

void merge_counter_snapshots(std::vector<CounterSnapshot>& total,
                             const std::vector<CounterSnapshot>& addend) {
  for (const auto& snap : addend) {
    bool found = false;
    for (auto& existing : total) {
      if (existing.bank == snap.bank && existing.index == snap.index) {
        existing.packets += snap.packets;
        existing.bytes += snap.bytes;
        found = true;
        break;
      }
    }
    if (!found) total.push_back(snap);
  }
}

}  // namespace flexsfp::ppe
