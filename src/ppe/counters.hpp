// Counter banks and CSR-style registers readable by the embedded control
// plane (§4.2: "read/write tables and counters with atomic, runtime
// updates").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/resource_model.hpp"

namespace flexsfp::ppe {

/// A named bank of saturating 64-bit packet/byte counters.
class CounterBank {
 public:
  CounterBank(std::string name, std::size_t count);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return packets_.size(); }

  void add(std::size_t index, std::uint64_t bytes);
  /// Accumulate a pre-counted contribution — the merge-safe form `add` is a
  /// special case of (one packet, `bytes` bytes).
  void accumulate(std::size_t index, std::uint64_t packets,
                  std::uint64_t bytes);
  /// Fold another bank in element-wise. Banks must agree on name and size
  /// (shards run identical designs); throws std::invalid_argument otherwise.
  void merge(const CounterBank& other);
  [[nodiscard]] std::uint64_t packets(std::size_t index) const;
  [[nodiscard]] std::uint64_t bytes(std::size_t index) const;
  void clear();

  [[nodiscard]] hw::ResourceUsage resource_usage() const {
    // Two 64-bit fields per counter.
    return hw::ResourceModel::counter_bank(packets_.size() * 2, 64);
  }

 private:
  std::string name_;
  std::vector<std::uint64_t> packets_;
  std::vector<std::uint64_t> bytes_;
};

/// Snapshot of one counter for control-plane reads.
struct CounterSnapshot {
  std::string bank;
  std::size_t index = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const CounterSnapshot&,
                         const CounterSnapshot&) = default;
};

/// Fold `addend` snapshots into `total` by (bank, index): matching entries
/// accumulate, new ones append in `addend` order. Deterministic for a fixed
/// merge order — how shard-parallel runs combine per-app counters.
void merge_counter_snapshots(std::vector<CounterSnapshot>& total,
                             const std::vector<CounterSnapshot>& addend);

}  // namespace flexsfp::ppe
