#include "ppe/app.hpp"

namespace flexsfp::ppe {

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::forward: return "forward";
    case Verdict::drop: return "drop";
    case Verdict::to_control_plane: return "to-control-plane";
  }
  return "verdict(?)";
}

const net::ParsedPacket& PacketContext::parsed() {
  if (!parsed_) parsed_ = net::parse_packet(packet_.data());
  return *parsed_;
}

}  // namespace flexsfp::ppe
