#include "ppe/app.hpp"

namespace flexsfp::ppe {

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::forward: return "forward";
    case Verdict::drop: return "drop";
    case Verdict::to_control_plane: return "to-control-plane";
  }
  return "verdict(?)";
}

const net::ParsedPacket& PacketContext::parsed() {
  if (!parsed_) parsed_ = net::parse_packet(packet_.data());
  return *parsed_;
}

StageProfile PpeApp::profile() const {
  StageProfile profile;
  profile.stage = name();
  profile.reads = wire_header_set();
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

std::vector<StageProfile> PpeApp::stage_profiles() const {
  return {profile()};
}

}  // namespace flexsfp::ppe
