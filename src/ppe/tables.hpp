// Hardware-style match tables with runtime (control-plane) updates.
//
// These model what the FlexSFP datapath can actually build out of LSRAM and
// fabric: a two-choice (d-left) bucketed exact-match hash table (insertions
// FAIL when both candidate buckets fill, as in real pipelines — no rehashing
// at line rate), a TCAM-emulation
// ternary table with priorities and range-to-mask expansion, and an LPM
// table. Every table reports its FPGA resource footprint and carries a
// generation counter so readers can detect atomic update epochs (§4.2:
// "APIs to read/write tables ... with atomic, runtime updates at line rate").
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hw/resource_model.hpp"
#include "net/addresses.hpp"

namespace flexsfp::ppe {

/// Two-choice bucketed exact-match table: `ways`-associative buckets, two
/// candidate buckets per key (d-left). Fixed geometry: capacity is
/// allocated up front (it is SRAM); an insert fails when both candidate
/// buckets are full.
class ExactMatchTable {
 public:
  /// `key_bits`/`value_bits` drive the resource estimate; runtime keys are
  /// 64-bit (wider logical keys are pre-hashed by the caller).
  ExactMatchTable(std::string name, std::size_t capacity,
                  std::uint32_t key_bits, std::uint32_t value_bits,
                  std::size_t ways = 4);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] double load_factor() const {
    return capacity_ > 0 ? double(size_) / double(capacity_) : 0.0;
  }

  /// Insert or update. False when the target bucket is full or the table is
  /// at capacity (hardware would report this to the control plane).
  bool insert(std::uint64_t key, std::uint64_t value);
  [[nodiscard]] std::optional<std::uint64_t> lookup(std::uint64_t key) const;
  /// Batched probe: out[i] = lookup(keys[i]), with key i+1's candidate
  /// buckets prefetched while key i is compared — the datapath entry point
  /// for PpeApp::process_batch overrides.
  void lookup_batch(const std::uint64_t* keys,
                    std::optional<std::uint64_t>* out, std::size_t n) const;
  bool erase(std::uint64_t key);
  void clear();

  /// Monotonic mutation epoch: bumped on every successful mutation, so a
  /// control-plane reader can snapshot-and-verify atomically.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  void for_each(
      const std::function<void(std::uint64_t, std::uint64_t)>& fn) const;

  [[nodiscard]] hw::ResourceUsage resource_usage() const {
    return hw::ResourceModel::exact_match_table(capacity_, key_bits_,
                                                value_bits_);
  }
  [[nodiscard]] std::uint32_t key_bits() const { return key_bits_; }
  [[nodiscard]] std::uint32_t value_bits() const { return value_bits_; }
  /// Insert attempts rejected because both candidate buckets were full.
  [[nodiscard]] std::uint64_t bucket_overflows() const {
    return bucket_overflows_;
  }

 private:
  [[nodiscard]] std::array<std::size_t, 2> bucket_indices(
      std::uint64_t key) const;
  /// Scan one key's two candidate buckets (the shared probe kernel of
  /// lookup and lookup_batch).
  [[nodiscard]] std::optional<std::uint64_t> probe(
      const std::array<std::size_t, 2>& buckets, std::uint64_t key) const;
  /// Free one way in `bucket` by relocating residents to their alternate
  /// buckets (bounded-depth cuckoo walk). Returns false when no chain of
  /// at most max_depth moves exists.
  bool cuckoo_make_room(std::size_t bucket, int depth);

  std::string name_;
  std::size_t capacity_;
  std::uint32_t key_bits_;
  std::uint32_t value_bits_;
  std::size_t ways_;
  std::size_t bucket_count_;
  // SoA slot storage (bucket_count_ x ways_ slots each): a probe streams
  // through one cache line of keys per bucket instead of striding over
  // padded {valid,key,value} structs. Index order — and therefore for_each
  // iteration order — is identical to the former Entry vector.
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint8_t> valid_;
  std::size_t size_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t bucket_overflows_ = 0;
};

/// Key/mask pair up to 128 bits for ternary matching.
struct TernaryKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr auto operator<=>(const TernaryKey&,
                                    const TernaryKey&) = default;
};

struct TernaryRule {
  TernaryKey value;
  TernaryKey mask;  // 1 bits participate in the match
  std::uint32_t priority = 0;  // higher wins
  std::uint64_t result = 0;
  std::uint64_t rule_id = 0;  // assigned by the table
};

/// TCAM emulation: linear priority match over up to `capacity` rules.
class TernaryTable {
 public:
  TernaryTable(std::string name, std::size_t capacity, std::uint32_t key_bits);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return rules_.size(); }

  /// Returns the assigned rule id, or nullopt when at capacity.
  std::optional<std::uint64_t> add_rule(TernaryRule rule);
  bool erase_rule(std::uint64_t rule_id);
  void clear();

  [[nodiscard]] std::optional<std::uint64_t> lookup(TernaryKey key) const;
  /// The rule that would match, with its metadata (for counters).
  [[nodiscard]] const TernaryRule* match(TernaryKey key) const;

  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] hw::ResourceUsage resource_usage() const {
    return hw::ResourceModel::ternary_table(capacity_, key_bits_);
  }
  [[nodiscard]] const std::vector<TernaryRule>& rules() const { return rules_; }

  /// Rules that can never match: an earlier rule in match order has a
  /// subset mask and agrees on every bit of it, so it always wins first.
  [[nodiscard]] std::size_t shadowed_rule_count() const;
  /// Rules identical in (value, mask) to an earlier rule — TCAM space
  /// burned for nothing.
  [[nodiscard]] std::size_t duplicate_rule_count() const;

 private:
  /// Re-derive the SoA match mirror from rules_ (called on every mutation).
  void rebuild_mirror();

  std::string name_;
  std::size_t capacity_;
  std::uint32_t key_bits_;
  std::vector<TernaryRule> rules_;  // kept sorted by priority desc
  // SoA mirror of rules_ in match order: masks plus pre-masked values, so
  // the per-key scan is four contiguous streams and no per-rule re-masking.
  // rules_ stays the control-plane authority; the mirror is derived state.
  std::vector<std::uint64_t> mask_hi_;
  std::vector<std::uint64_t> mask_lo_;
  std::vector<std::uint64_t> masked_value_hi_;
  std::vector<std::uint64_t> masked_value_lo_;
  std::uint64_t next_rule_id_ = 1;
  std::uint64_t generation_ = 0;
};

/// Expand an inclusive [lo, hi] port range into the minimal set of
/// (value, mask) pairs over 16 bits — the classic TCAM range-expansion
/// technique. Returns up to 30 pairs ((value, wildcard-mask) tuples where
/// the mask has 1s for exact bits).
[[nodiscard]] std::vector<std::pair<std::uint16_t, std::uint16_t>>
expand_port_range(std::uint16_t lo, std::uint16_t hi);

/// Longest-prefix-match table over IPv4 destinations.
class LpmTable {
 public:
  LpmTable(std::string name, std::size_t capacity);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  bool insert(net::Ipv4Prefix prefix, std::uint64_t value);
  bool erase(net::Ipv4Prefix prefix);
  [[nodiscard]] std::optional<std::uint64_t> lookup(net::Ipv4Address addr) const;
  /// Value stored for exactly `prefix` (no longest-prefix fallback) — the
  /// control-plane view of one entry, unaffected by nested prefixes.
  [[nodiscard]] std::optional<std::uint64_t> lookup_exact(
      net::Ipv4Prefix prefix) const;
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] hw::ResourceUsage resource_usage() const {
    return hw::ResourceModel::lpm_table(capacity_);
  }

 private:
  struct Entry {
    net::Ipv4Prefix prefix;
    std::uint64_t value;
  };

  /// Re-derive the SoA lookup mirror from entries_ (on every mutation).
  void rebuild_mirror();

  std::string name_;
  std::size_t capacity_;
  std::vector<Entry> entries_;  // sorted by descending prefix length
  // SoA mirror of entries_ in lookup order with the netmask precomputed:
  // the longest-prefix scan is then (addr & mask_[i]) == base_[i] over
  // contiguous arrays. entries_ stays the control-plane authority.
  std::vector<std::uint32_t> mask32_;
  std::vector<std::uint32_t> base_;
  std::vector<std::uint64_t> value_;
  std::uint64_t generation_ = 0;
};

}  // namespace flexsfp::ppe
