// Static introspection surface of a PPE application: what the stage reads,
// writes, produces and consumes, which tables it carries and what its
// per-packet cycle cost is — everything the deploy-time verifier
// (analysis::PipelineVerifier) needs to reproduce the paper's feasibility
// arithmetic (§5, Tables 1/2) without running a single simulated cycle.
//
// Apps fill these structures from their *configuration*, not from traffic:
// a profile must be obtainable from a freshly instantiated app, which is
// exactly what a bitstream can reconstruct before deployment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace flexsfp::ppe {

enum class Verdict : std::uint8_t;  // defined in ppe/app.hpp

/// Header layers a stage can depend on. `telemetry_shim` is the only
/// module-synthetic layer: it never originates from a host stack, so a
/// stage reading it needs an upstream producer (in-chain or on-path).
enum class HeaderKind : std::uint8_t {
  ethernet = 0,
  vlan,
  ipv4,
  ipv6,
  tcp,
  udp,
  icmp,
  gre,
  vxlan,
  telemetry_shim,
};

inline constexpr std::size_t header_kind_count = 10;

[[nodiscard]] std::string to_string(HeaderKind kind);

/// Bitmask over HeaderKind.
using HeaderSet = std::uint32_t;

[[nodiscard]] constexpr HeaderSet header_bit(HeaderKind kind) {
  return HeaderSet{1} << static_cast<std::uint8_t>(kind);
}

[[nodiscard]] constexpr HeaderSet header_set(
    std::initializer_list<HeaderKind> kinds) {
  HeaderSet set = 0;
  for (const HeaderKind kind : kinds) set |= header_bit(kind);
  return set;
}

/// Every layer a frame arriving from the network may already carry —
/// everything except module-synthetic shims.
[[nodiscard]] constexpr HeaderSet wire_header_set() {
  return header_set({HeaderKind::ethernet, HeaderKind::vlan, HeaderKind::ipv4,
                     HeaderKind::ipv6, HeaderKind::tcp, HeaderKind::udp,
                     HeaderKind::icmp, HeaderKind::gre, HeaderKind::vxlan});
}

/// Total field bits the layer contributes to match keys (header size; used
/// to sanity-check declared key widths against their source fields).
[[nodiscard]] std::uint32_t header_field_bits(HeaderKind kind);

/// Names of every kind present in `set`, in enum order.
[[nodiscard]] std::vector<std::string> header_set_names(HeaderSet set);

enum class TableKind : std::uint8_t {
  exact_match,
  ternary,
  lpm,
};

[[nodiscard]] std::string to_string(TableKind kind);

/// Static geometry (and content health) of one match table.
struct TableProfile {
  std::string name;
  TableKind kind = TableKind::exact_match;
  std::uint64_t capacity = 0;
  std::uint32_t key_bits = 0;
  std::uint32_t value_bits = 0;
  /// Header layers the lookup key is built from.
  HeaderSet key_sources = 0;
  /// Entries installed right now that can never match because an
  /// earlier/higher-priority entry covers them (ternary shadowing).
  std::uint64_t shadowed_entries = 0;
  /// Exactly identical installed entries (should be impossible for
  /// well-behaved control planes; flagged when it happens).
  std::uint64_t duplicate_entries = 0;
};

/// Declared geometry of one counter bank plus the highest index the stage's
/// datapath logic can address. An out-of-range index throws at runtime
/// (CounterBank::add); the verifier turns it into a deploy-time error.
struct CounterBankProfile {
  std::string name;
  std::size_t slots = 0;
  std::size_t max_index_used = 0;
};

/// One pipeline stage as the static verifier sees it.
struct StageProfile {
  /// Registry name of the stage ("nat", "acl", ...).
  std::string stage;
  /// Header layers the match/action logic inspects.
  HeaderSet reads = 0;
  /// Layers edited in place (field rewrites).
  HeaderSet writes = 0;
  /// Layers added to the frame (downstream stages can read them).
  HeaderSet produces = 0;
  /// Layers removed from the frame (unavailable downstream).
  HeaderSet consumes = 0;
  std::vector<TableProfile> tables;
  std::vector<CounterBankProfile> counter_banks;
  /// Per-packet occupancy of the stage's slowest non-overlapped unit, in
  /// datapath cycles (1 for fully pipelined match-action logic; the program
  /// length for a sequential soft-core stage like the BPF filter).
  std::uint64_t match_action_cycles = 1;
  /// Fixed register-stage depth added to every packet's latency.
  std::uint64_t pipeline_depth_cycles = 0;
  /// Set when configuration alone fixes the verdict of every packet
  /// (e.g. a BPF program whose first instruction is terminal).
  std::optional<Verdict> constant_verdict;
};

}  // namespace flexsfp::ppe
