// Application registry: maps the app name carried in a bitstream to a
// factory that rebuilds the app from its serialized configuration. This is
// the software analogue of the build framework's library of synthesizable
// packet functions (§4.2).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ppe/app.hpp"

namespace flexsfp::ppe {

class AppRegistry {
 public:
  using Factory = std::function<PpeAppPtr(net::BytesView config)>;

  /// The process-wide registry (apps self-register at startup).
  [[nodiscard]] static AppRegistry& instance();

  /// Register a factory under `name`. Re-registration replaces (tests rely
  /// on this to stub apps).
  void register_app(const std::string& name, Factory factory);

  /// Instantiate `name` from `config`; nullptr when unknown or when the
  /// factory rejects the config.
  [[nodiscard]] PpeAppPtr create(const std::string& name,
                                 net::BytesView config) const;

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Helper for static registration:
///   const bool registered = register_ppe_app("nat", [](auto cfg) {...});
bool register_ppe_app(const std::string& name, AppRegistry::Factory factory);

}  // namespace flexsfp::ppe
