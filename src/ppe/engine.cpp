#include "ppe/engine.hpp"

#include <utility>

namespace flexsfp::ppe {

Engine::Engine(sim::Simulation& sim, PpeAppPtr app, hw::DatapathConfig datapath,
               std::size_t queue_capacity)
    : sim::QueuedServer(sim, queue_capacity),
      app_(std::move(app)),
      datapath_(datapath) {}

void Engine::replace_app(PpeAppPtr app) { app_ = std::move(app); }

sim::TimePs Engine::service_time(const net::Packet& packet) {
  const std::uint64_t beats = std::max<std::uint64_t>(
      datapath_.beats_for(packet.size()), 1);
  return datapath_.clock.cycles_to_time(beats);
}

void Engine::finish(net::PacketPtr packet) {
  PacketContext ctx(*packet);
  const Verdict verdict = app_->process(ctx);

  if (ctx.mirror_requested() && control_) {
    control_(std::make_shared<net::Packet>(*packet));
  }

  // The packet leaves the pipeline pipeline-depth cycles after its last
  // beat; this adds latency but does not occupy the bus.
  const sim::TimePs drain =
      datapath_.clock.cycles_to_time(app_->pipeline_latency_cycles());

  switch (verdict) {
    case Verdict::forward:
      ++forwarded_;
      if (forward_) {
        sim().schedule_in(drain, [this, packet = std::move(packet)]() mutable {
          latency_.record(sim().now() - packet->ingress_time_ps());
          forward_(std::move(packet));
        });
      }
      break;
    case Verdict::drop:
      ++dropped_;
      break;
    case Verdict::to_control_plane:
      ++punted_;
      if (control_) {
        sim().schedule_in(drain, [this, packet = std::move(packet)]() mutable {
          control_(std::move(packet));
        });
      }
      break;
  }
}

}  // namespace flexsfp::ppe
