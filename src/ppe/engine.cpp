#include "ppe/engine.hpp"

#include <utility>

namespace flexsfp::ppe {

Engine::Engine(sim::Simulation& sim, PpeAppPtr app, hw::DatapathConfig datapath,
               std::size_t queue_capacity)
    : sim::QueuedServer(sim, queue_capacity, "ppe"),
      app_(std::move(app)),
      datapath_(datapath) {
  bind_app_series();
  // The app's CounterBanks are the live in-datapath tallies; the collector
  // reads them through the registry at snapshot time instead of mirroring
  // them into a second count. It follows app_ across replace_app().
  collector_token_ = sim.metrics().register_collector(
      [this](obs::MetricSnapshot& snap) { collect_app_counters(snap); });
}

Engine::~Engine() { sim().metrics().unregister_collector(collector_token_); }

void Engine::replace_app(PpeAppPtr app) {
  app_ = std::move(app);
  bind_app_series();
}

void Engine::bind_app_series() {
  drain_ = datapath_.clock.cycles_to_time(app_->pipeline_latency_cycles());
  auto& metrics = sim().metrics();
  const obs::Labels labels{{"app", app_->name()}, {"stage", stage_name()}};
  forwarded_id_ = metrics.counter("engine.forwarded", labels);
  dropped_id_ = metrics.counter("engine.app_drops", labels);
  punted_id_ = metrics.counter("engine.punted", labels);
  const auto remember = [](std::vector<obs::MetricId>& ids, obs::MetricId id) {
    for (const obs::MetricId seen : ids) {
      if (seen.index == id.index) return;  // same app name re-deployed
    }
    ids.push_back(id);
  };
  remember(forwarded_ids_, forwarded_id_);
  remember(dropped_ids_, dropped_id_);
  remember(punted_ids_, punted_id_);
}

void Engine::collect_app_counters(obs::MetricSnapshot& snap) const {
  for (const CounterSnapshot& counter : app_->counters()) {
    obs::Labels labels{{"app", app_->name()},
                       {"bank", counter.bank},
                       {"index", std::to_string(counter.index)},
                       {"stage", stage_name()}};
    snap.add_sample({"app.counter.packets", labels, obs::MetricKind::counter,
                     counter.packets});
    snap.add_sample({"app.counter.bytes", std::move(labels),
                     obs::MetricKind::counter, counter.bytes});
  }
}

std::uint64_t Engine::sum(const std::vector<obs::MetricId>& ids) const {
  std::uint64_t total = 0;
  for (const obs::MetricId id : ids) total += sim().metrics().value(id);
  return total;
}

sim::TimePs Engine::service_time(const net::Packet& packet) {
  if (packet.size() != last_size_) {
    last_size_ = packet.size();
    const std::uint64_t beats = std::max<std::uint64_t>(
        datapath_.beats_for(packet.size()), 1);
    last_service_ = datapath_.clock.cycles_to_time(beats);
  }
  return last_service_;
}

void Engine::finish(net::PacketPtr packet) {
  // The engine serializes service, so exactly one packet completes per
  // finish event; it still flows through the burst entry point so an app's
  // vectorized process_batch override (e.g. StaticNat's SoA binding probe)
  // is the one path every packet takes, scalar or batched.
  PacketContext ctx(*packet);
  PacketContext* ctxs[1] = {&ctx};
  Verdict verdict = Verdict::drop;
  app_->process_batch(ctxs, &verdict, 1);

  if (ctx.mirror_requested() && control_) {
    control_(sim().packet_pool().clone(*packet));
  }

  // The packet leaves the pipeline pipeline-depth cycles after its last
  // beat (drain_, cached at app-bind time); this adds latency but does not
  // occupy the bus.
  const sim::TimePs drain = drain_;

  auto& flight = sim().flight();
  const bool flying = flight.sampled(packet->id());
  const auto record_verdict = [&](obs::HopKind kind) {
    if (!flying) return;
    flight.record(packet->id(), flight_stage(), kind, sim().now(),
                  static_cast<std::uint32_t>(queue_depth()),
                  std::uint64_t(drain));
  };

  switch (verdict) {
    case Verdict::forward:
      sim().metrics().add(forwarded_id_);
      record_verdict(obs::HopKind::forward);
      if (forward_) {
        sim().schedule_in(drain, [this, token = lifetime_token(),
                                  packet = std::move(packet)]() mutable {
          if (!token.alive()) return;  // engine torn down during drain
          latency_.record(sim().now() - packet->ingress_time_ps());
          forward_(std::move(packet));
        });
      }
      break;
    case Verdict::drop:
      sim().metrics().add(dropped_id_);
      record_verdict(obs::HopKind::app_drop);
      break;
    case Verdict::to_control_plane:
      sim().metrics().add(punted_id_);
      record_verdict(obs::HopKind::punt);
      if (control_) {
        sim().schedule_in(drain, [this, token = lifetime_token(),
                                  packet = std::move(packet)]() mutable {
          if (!token.alive()) return;  // engine torn down during drain
          control_(std::move(packet));
        });
      }
      break;
  }
}

}  // namespace flexsfp::ppe
