#include "net/pcap.hpp"

#include <array>
#include <stdexcept>

namespace flexsfp::net {

namespace {

constexpr std::uint32_t pcap_magic = 0xa1b2c3d4;
constexpr std::uint32_t linktype_ethernet = 1;

void put_le32(std::ofstream& out, std::uint32_t v) {
  std::array<char, 4> b{static_cast<char>(v & 0xff),
                        static_cast<char>((v >> 8) & 0xff),
                        static_cast<char>((v >> 16) & 0xff),
                        static_cast<char>((v >> 24) & 0xff)};
  out.write(b.data(), b.size());
}

void put_le16(std::ofstream& out, std::uint16_t v) {
  std::array<char, 2> b{static_cast<char>(v & 0xff),
                        static_cast<char>((v >> 8) & 0xff)};
  out.write(b.data(), b.size());
}

std::optional<std::uint32_t> get_le32(std::ifstream& in) {
  std::array<unsigned char, 4> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  if (!in) return std::nullopt;
  return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
         (std::uint32_t{b[2]} << 16) | (std::uint32_t{b[3]} << 24);
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path)
    : out_(path, std::ios::binary) {
  if (!out_) throw std::runtime_error("PcapWriter: cannot open " + path);
  put_le32(out_, pcap_magic);
  put_le16(out_, 2);   // version major
  put_le16(out_, 4);   // version minor
  put_le32(out_, 0);   // thiszone
  put_le32(out_, 0);   // sigfigs
  put_le32(out_, 65535);  // snaplen
  put_le32(out_, linktype_ethernet);
}

void PcapWriter::write(const PcapRecord& record) {
  write(record.data, record.timestamp_us);
}

void PcapWriter::write(BytesView frame, std::int64_t timestamp_us) {
  put_le32(out_, static_cast<std::uint32_t>(timestamp_us / 1000000));
  put_le32(out_, static_cast<std::uint32_t>(timestamp_us % 1000000));
  put_le32(out_, static_cast<std::uint32_t>(frame.size()));
  put_le32(out_, static_cast<std::uint32_t>(frame.size()));
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  ++count_;
}

std::optional<std::vector<PcapRecord>> read_pcap(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  const auto magic = get_le32(in);
  if (!magic || *magic != pcap_magic) return std::nullopt;
  // Skip version/zone/sigfigs/snaplen, check linktype.
  std::array<char, 16> skip{};
  in.read(skip.data(), skip.size());
  const auto linktype = get_le32(in);
  if (!linktype || *linktype != linktype_ethernet) return std::nullopt;

  std::vector<PcapRecord> records;
  while (true) {
    const auto ts_sec = get_le32(in);
    if (!ts_sec) break;  // clean EOF
    const auto ts_usec = get_le32(in);
    const auto caplen = get_le32(in);
    const auto origlen = get_le32(in);
    if (!ts_usec || !caplen || !origlen) return std::nullopt;  // truncated
    PcapRecord record;
    record.timestamp_us =
        std::int64_t{*ts_sec} * 1000000 + std::int64_t{*ts_usec};
    record.data.resize(*caplen);
    in.read(reinterpret_cast<char*>(record.data.data()), *caplen);
    if (!in) return std::nullopt;
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace flexsfp::net
