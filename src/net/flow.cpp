#include "net/flow.hpp"

namespace flexsfp::net {

std::string FiveTuple::to_string() const {
  return src.to_string() + ":" + std::to_string(src_port) + " -> " +
         dst.to_string() + ":" + std::to_string(dst_port) + " proto " +
         std::to_string(protocol);
}

FiveTuple FiveTuple::reversed() const {
  return FiveTuple{dst, src, dst_port, src_port, protocol};
}

FiveTuple FiveTuple::canonical() const {
  const auto fwd = std::pair{src.value(), src_port};
  const auto rev = std::pair{dst.value(), dst_port};
  return fwd <= rev ? *this : reversed();
}

ToeplitzHash::ToeplitzHash(Bytes key) : key_(std::move(key)) {}

ToeplitzHash ToeplitzHash::symmetric() {
  // The well-known symmetric RSS key: repeating 0x6d5a makes
  // H(src,dst) == H(dst,src) for swapped 32-bit/16-bit field pairs.
  Bytes key(40);
  for (std::size_t i = 0; i < key.size(); i += 2) {
    key[i] = 0x6d;
    key[i + 1] = 0x5a;
  }
  return ToeplitzHash{std::move(key)};
}

std::uint32_t ToeplitzHash::operator()(BytesView input) const {
  std::uint32_t result = 0;
  // Window = first 32 bits of the key, shifted left one bit per input bit.
  std::uint32_t window = 0;
  std::size_t key_bit = 32;
  for (std::size_t i = 0; i < 4 && i < key_.size(); ++i) {
    window = (window << 8) | key_[i];
  }
  for (std::size_t byte = 0; byte < input.size(); ++byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (((input[byte] >> bit) & 1) != 0) result ^= window;
      // Shift in the next key bit.
      const std::size_t key_byte = key_bit / 8;
      std::uint32_t next = 0;
      if (key_byte < key_.size()) {
        next = (key_[key_byte] >> (7 - key_bit % 8)) & 1;
      }
      window = (window << 1) | next;
      ++key_bit;
    }
  }
  return result;
}

std::uint32_t ToeplitzHash::hash_tuple(const FiveTuple& t) const {
  std::uint8_t input[12];
  BytesSpan span{input, sizeof input};
  write_be32(span, 0, t.src.value());
  write_be32(span, 4, t.dst.value());
  write_be16(span, 8, t.src_port);
  write_be16(span, 10, t.dst_port);
  return (*this)(BytesView{input, sizeof input});
}

std::uint64_t hash_tuple(const FiveTuple& t, std::uint64_t seed) {
  std::uint8_t input[13];
  BytesSpan span{input, sizeof input};
  write_be32(span, 0, t.src.value());
  write_be32(span, 4, t.dst.value());
  write_be16(span, 8, t.src_port);
  write_be16(span, 10, t.dst_port);
  input[12] = t.protocol;
  return murmur3_64(BytesView{input, sizeof input}, seed);
}

}  // namespace flexsfp::net
