#include "net/flow.hpp"

namespace flexsfp::net {

std::string FiveTuple::to_string() const {
  return src.to_string() + ":" + std::to_string(src_port) + " -> " +
         dst.to_string() + ":" + std::to_string(dst_port) + " proto " +
         std::to_string(protocol);
}

FiveTuple FiveTuple::reversed() const {
  return FiveTuple{dst, src, dst_port, src_port, protocol};
}

FiveTuple FiveTuple::canonical() const {
  const auto fwd = std::pair{src.value(), src_port};
  const auto rev = std::pair{dst.value(), dst_port};
  return fwd <= rev ? *this : reversed();
}

std::uint64_t fnv1a(BytesView data) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const auto byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t fnv1a_u64(std::uint64_t value) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return fnv1a(BytesView{bytes, 8});
}

namespace {

std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

}  // namespace

std::uint64_t murmur3_64(BytesView data, std::uint64_t seed) {
  // A streamlined variant of MurmurHash3 x64: 8-byte blocks mixed with the
  // x64 finalizer. Chosen for avalanche quality, not wire compatibility.
  std::uint64_t hash = seed ^ (data.size() * 0x87c37b91114253d5ull);
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t block = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      block |= std::uint64_t{data[i + j]} << (8 * j);
    }
    hash = fmix64(hash ^ block) * 0x5bd1e9955bd1e995ull;
  }
  std::uint64_t tail = 0;
  for (std::size_t j = 0; i + j < data.size(); ++j) {
    tail |= std::uint64_t{data[i + j]} << (8 * j);
  }
  return fmix64(hash ^ tail);
}

ToeplitzHash::ToeplitzHash(Bytes key) : key_(std::move(key)) {}

ToeplitzHash ToeplitzHash::symmetric() {
  // The well-known symmetric RSS key: repeating 0x6d5a makes
  // H(src,dst) == H(dst,src) for swapped 32-bit/16-bit field pairs.
  Bytes key(40);
  for (std::size_t i = 0; i < key.size(); i += 2) {
    key[i] = 0x6d;
    key[i + 1] = 0x5a;
  }
  return ToeplitzHash{std::move(key)};
}

std::uint32_t ToeplitzHash::operator()(BytesView input) const {
  std::uint32_t result = 0;
  // Window = first 32 bits of the key, shifted left one bit per input bit.
  std::uint32_t window = 0;
  std::size_t key_bit = 32;
  for (std::size_t i = 0; i < 4 && i < key_.size(); ++i) {
    window = (window << 8) | key_[i];
  }
  for (std::size_t byte = 0; byte < input.size(); ++byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (((input[byte] >> bit) & 1) != 0) result ^= window;
      // Shift in the next key bit.
      const std::size_t key_byte = key_bit / 8;
      std::uint32_t next = 0;
      if (key_byte < key_.size()) {
        next = (key_[key_byte] >> (7 - key_bit % 8)) & 1;
      }
      window = (window << 1) | next;
      ++key_bit;
    }
  }
  return result;
}

std::uint32_t ToeplitzHash::hash_tuple(const FiveTuple& t) const {
  std::uint8_t input[12];
  BytesSpan span{input, sizeof input};
  write_be32(span, 0, t.src.value());
  write_be32(span, 4, t.dst.value());
  write_be16(span, 8, t.src_port);
  write_be16(span, 10, t.dst_port);
  return (*this)(BytesView{input, sizeof input});
}

std::uint64_t hash_tuple(const FiveTuple& t, std::uint64_t seed) {
  std::uint8_t input[13];
  BytesSpan span{input, sizeof input};
  write_be32(span, 0, t.src.value());
  write_be32(span, 4, t.dst.value());
  write_be16(span, 8, t.src_port);
  write_be16(span, 10, t.dst_port);
  input[12] = t.protocol;
  return murmur3_64(BytesView{input, sizeof input}, seed);
}

}  // namespace flexsfp::net
