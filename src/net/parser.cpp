#include "net/parser.hpp"

#include "net/checksum.hpp"

namespace flexsfp::net {

std::string to_string(ParseError error) {
  switch (error) {
    case ParseError::none: return "none";
    case ParseError::truncated_ethernet: return "truncated-ethernet";
    case ParseError::truncated_vlan: return "truncated-vlan";
    case ParseError::too_many_vlan_tags: return "too-many-vlan-tags";
    case ParseError::bad_ip_version: return "bad-ip-version";
    case ParseError::truncated_ipv4: return "truncated-ipv4";
    case ParseError::truncated_ipv6: return "truncated-ipv6";
    case ParseError::truncated_l4: return "truncated-l4";
    case ParseError::bad_gre: return "bad-gre";
    case ParseError::bad_vxlan: return "bad-vxlan";
  }
  return "parse-error(?)";
}

std::optional<FiveTuple> IpLayer::five_tuple() const {
  if (!ipv4) return std::nullopt;
  FiveTuple t;
  t.src = ipv4->src;
  t.dst = ipv4->dst;
  t.protocol = ipv4->protocol;
  if (tcp) {
    t.src_port = tcp->src_port;
    t.dst_port = tcp->dst_port;
  } else if (udp) {
    t.src_port = udp->src_port;
    t.dst_port = udp->dst_port;
  }
  return t;
}

namespace {

// Parse one IP + L4 layer starting at `offset`; fills `layer`, returns the
// first ParseError hit (or none). A missing/unknown L4 is not an error —
// payload_offset then points just past the IP header.
ParseError parse_ip_layer(BytesView data, std::size_t offset,
                          std::uint16_t ether_type, IpLayer& layer) {
  layer.l3_offset = offset;
  const bool expect_v4 = ether_type == static_cast<std::uint16_t>(EtherType::ipv4);
  const bool expect_v6 = ether_type == static_cast<std::uint16_t>(EtherType::ipv6);
  // The EtherType promises an IP version. When the version nibble is there
  // to read and disagrees, that is its own malformation (the encapsulation
  // lies about its payload), distinct from a merely short header.
  if ((expect_v4 || expect_v6) && offset < data.size() &&
      (data[offset] >> 4) != (expect_v4 ? 4 : 6)) {
    return ParseError::bad_ip_version;
  }
  std::uint8_t l4_proto = 0;
  if (expect_v4) {
    auto ipv4 = Ipv4Header::parse(data, offset);
    if (!ipv4) return ParseError::truncated_ipv4;
    layer.ipv4 = *ipv4;
    layer.l4_offset = offset + ipv4->size();
    l4_proto = ipv4->protocol;
  } else if (expect_v6) {
    auto ipv6 = Ipv6Header::parse(data, offset);
    if (!ipv6) return ParseError::truncated_ipv6;
    layer.ipv6 = *ipv6;
    layer.l4_offset = offset + Ipv6Header::size();
    l4_proto = ipv6->next_header;
  } else {
    return ParseError::bad_ip_version;
  }

  layer.payload_offset = layer.l4_offset;
  // Do not attempt L4 parsing on non-first fragments: the transport header
  // is only present in fragment 0.
  if (layer.ipv4 && layer.ipv4->fragment_offset != 0) return ParseError::none;

  switch (static_cast<IpProto>(l4_proto)) {
    case IpProto::tcp: {
      auto tcp = TcpHeader::parse(data, layer.l4_offset);
      if (!tcp) return ParseError::truncated_l4;
      layer.tcp = *tcp;
      layer.payload_offset = layer.l4_offset + tcp->size();
      break;
    }
    case IpProto::udp: {
      auto udp = UdpHeader::parse(data, layer.l4_offset);
      if (!udp) return ParseError::truncated_l4;
      layer.udp = *udp;
      layer.payload_offset = layer.l4_offset + UdpHeader::size();
      break;
    }
    case IpProto::icmp:
    case IpProto::icmpv6: {
      auto icmp = IcmpHeader::parse(data, layer.l4_offset);
      if (!icmp) return ParseError::truncated_l4;
      layer.icmp = *icmp;
      layer.payload_offset = layer.l4_offset + IcmpHeader::size();
      break;
    }
    default:
      break;  // unknown L4: leave payload at end of IP header
  }
  return ParseError::none;
}

}  // namespace

ParsedPacket parse_packet(BytesView data, const ParserOptions& options) {
  ParsedPacket out;

  const auto eth = EthernetHeader::parse(data, 0);
  if (!eth) {
    out.error = ParseError::truncated_ethernet;
    return out;
  }
  out.eth = *eth;

  std::size_t offset = EthernetHeader::size();
  std::uint16_t ether_type = eth->ether_type;
  while (ether_type == static_cast<std::uint16_t>(EtherType::vlan) ||
         ether_type == static_cast<std::uint16_t>(EtherType::qinq)) {
    if (out.vlan_tags.size() >= options.max_vlan_tags) {
      out.error = ParseError::too_many_vlan_tags;
      return out;
    }
    const auto tag = VlanTag::parse(data, offset);
    if (!tag) {
      out.error = ParseError::truncated_vlan;
      return out;
    }
    out.vlan_tags.push_back(*tag);
    offset += VlanTag::size();
    ether_type = tag->ether_type;
  }
  out.effective_ether_type = ether_type;

  if (ether_type != static_cast<std::uint16_t>(EtherType::ipv4) &&
      ether_type != static_cast<std::uint16_t>(EtherType::ipv6)) {
    return out;  // non-IP (ARP, mgmt, ...) is valid but has no IP layer
  }

  out.error = parse_ip_layer(data, offset, ether_type, out.outer);
  if (out.error != ParseError::none || !options.parse_tunnels) return out;

  // Tunnel recognition: GRE and VXLAN-over-UDP, one level deep.
  if (out.outer.ipv4 &&
      out.outer.ipv4->protocol == static_cast<std::uint8_t>(IpProto::gre)) {
    const auto gre = GreHeader::parse(data, out.outer.l4_offset);
    if (!gre) {
      out.error = ParseError::bad_gre;
      return out;
    }
    out.gre = *gre;
    IpLayer inner;
    const auto err = parse_ip_layer(data, out.outer.l4_offset + GreHeader::size(),
                                    gre->protocol, inner);
    if (err == ParseError::none) out.inner = inner;
    // An unknown GRE payload type is fine; we simply don't parse deeper.
  } else if (out.outer.udp && out.outer.udp->dst_port == VxlanHeader::udp_port) {
    const auto vxlan = VxlanHeader::parse(data, out.outer.payload_offset);
    if (!vxlan) {
      out.error = ParseError::bad_vxlan;
      return out;
    }
    out.vxlan = *vxlan;
    const std::size_t inner_l2 = out.outer.payload_offset + VxlanHeader::size();
    const auto inner_eth = EthernetHeader::parse(data, inner_l2);
    if (inner_eth) {
      out.inner_eth = *inner_eth;
      IpLayer inner;
      const auto err = parse_ip_layer(data, inner_l2 + EthernetHeader::size(),
                                      inner_eth->ether_type, inner);
      if (err == ParseError::none) out.inner = inner;
    }
  }
  return out;
}

std::string to_string(ValidationIssue issue) {
  switch (issue) {
    case ValidationIssue::ipv4_bad_checksum: return "ipv4-bad-checksum";
    case ValidationIssue::ipv4_total_length_mismatch:
      return "ipv4-total-length-mismatch";
    case ValidationIssue::ipv4_ttl_zero: return "ipv4-ttl-zero";
    case ValidationIssue::ipv4_fragment: return "ipv4-fragment";
    case ValidationIssue::ipv4_options_present: return "ipv4-options-present";
    case ValidationIssue::ipv4_martian_source: return "ipv4-martian-source";
    case ValidationIssue::ipv6_payload_length_mismatch:
      return "ipv6-payload-length-mismatch";
    case ValidationIssue::ipv6_hop_limit_zero: return "ipv6-hop-limit-zero";
    case ValidationIssue::tcp_bad_flags: return "tcp-bad-flags";
    case ValidationIssue::udp_length_mismatch: return "udp-length-mismatch";
    case ValidationIssue::frame_undersized: return "frame-undersized";
  }
  return "validation-issue(?)";
}

std::vector<ValidationIssue> validate_packet(const ParsedPacket& parsed,
                                             BytesView data) {
  std::vector<ValidationIssue> issues;
  if (data.size() < 60) issues.push_back(ValidationIssue::frame_undersized);

  if (parsed.outer.ipv4) {
    const auto& ip = *parsed.outer.ipv4;
    if (ip.compute_checksum() != ip.checksum) {
      issues.push_back(ValidationIssue::ipv4_bad_checksum);
    }
    const std::size_t ip_bytes_available = data.size() - parsed.outer.l3_offset;
    // total_length may be less than available bytes (Ethernet min-frame
    // padding) but never more.
    if (ip.total_length < ip.size() || ip.total_length > ip_bytes_available) {
      issues.push_back(ValidationIssue::ipv4_total_length_mismatch);
    }
    if (ip.ttl == 0) issues.push_back(ValidationIssue::ipv4_ttl_zero);
    if (ip.more_fragments || ip.fragment_offset != 0) {
      issues.push_back(ValidationIssue::ipv4_fragment);
    }
    if (ip.ihl > 5) issues.push_back(ValidationIssue::ipv4_options_present);
    if (ip.src.is_loopback() || ip.src.is_multicast()) {
      issues.push_back(ValidationIssue::ipv4_martian_source);
    }
    if (parsed.outer.udp) {
      const std::size_t udp_bytes_available =
          parsed.outer.l3_offset + ip.total_length >= parsed.outer.l4_offset
              ? parsed.outer.l3_offset + ip.total_length - parsed.outer.l4_offset
              : 0;
      if (parsed.outer.udp->length < UdpHeader::size() ||
          parsed.outer.udp->length > udp_bytes_available) {
        issues.push_back(ValidationIssue::udp_length_mismatch);
      }
    }
  }

  if (parsed.outer.ipv6) {
    const auto& ip6 = *parsed.outer.ipv6;
    const std::size_t available =
        data.size() - parsed.outer.l3_offset - Ipv6Header::size();
    if (ip6.payload_length > available) {
      issues.push_back(ValidationIssue::ipv6_payload_length_mismatch);
    }
    if (ip6.hop_limit == 0) {
      issues.push_back(ValidationIssue::ipv6_hop_limit_zero);
    }
  }

  if (parsed.outer.tcp) {
    const std::uint8_t flags = parsed.outer.tcp->flags;
    const bool syn_fin = (flags & TcpHeader::flag_syn) != 0 &&
                         (flags & TcpHeader::flag_fin) != 0;
    const bool null_scan = (flags & 0x3f) == 0;
    if (syn_fin || null_scan) {
      issues.push_back(ValidationIssue::tcp_bad_flags);
    }
  }
  return issues;
}

}  // namespace flexsfp::net
