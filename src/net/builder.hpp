// Fluent frame construction with automatic length and checksum fixup, plus
// the in-place encapsulation/decapsulation primitives the tunnel app uses.
#pragma once

#include <cstdint>
#include <optional>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/parser.hpp"

namespace flexsfp::net {

/// Builds a frame inner-to-outer-agnostic: call the layer methods in wire
/// order (ethernet, [vlan...], ip, l4, payload) then build(). Lengths and
/// checksums are computed in build(); explicitly set values are preserved.
class PacketBuilder {
 public:
  PacketBuilder& ethernet(MacAddress dst, MacAddress src,
                          EtherType type = EtherType::ipv4);
  PacketBuilder& vlan(std::uint16_t vid, std::uint8_t pcp = 0);
  /// Outer 802.1ad service tag followed by an inner 802.1Q tag.
  PacketBuilder& qinq(std::uint16_t service_vid, std::uint16_t customer_vid);
  PacketBuilder& ipv4(Ipv4Address src, Ipv4Address dst, IpProto proto,
                      std::uint8_t ttl = 64);
  PacketBuilder& ipv4_header(const Ipv4Header& header);
  PacketBuilder& ipv6(Ipv6Address src, Ipv6Address dst, IpProto next,
                      std::uint8_t hop_limit = 64);
  PacketBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  PacketBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port,
                     std::uint8_t flags = TcpHeader::flag_ack);
  PacketBuilder& icmp_echo(std::uint16_t id, std::uint16_t seq);
  /// Raw payload bytes.
  PacketBuilder& payload(Bytes bytes);
  /// Zero payload of `size` bytes (pattern-filled for identification).
  PacketBuilder& payload_size(std::size_t size);
  /// Pad the final frame to at least `size` bytes (default: Ethernet
  /// 60-byte minimum is always applied).
  PacketBuilder& min_frame_size(std::size_t size);

  /// Assemble the frame. Can be called repeatedly; the builder is const
  /// after configuration.
  [[nodiscard]] Bytes build() const;
  [[nodiscard]] Packet build_packet() const;
  /// build() into an existing buffer, reusing its capacity — the
  /// allocation-free path for pooled packets (TrafficGen's steady state).
  void build_into(Bytes& frame) const;

  /// Forget every configured layer but keep the payload buffer's capacity,
  /// so one builder instance can assemble a frame per packet without
  /// touching the allocator.
  PacketBuilder& reset();

 private:
  std::optional<EthernetHeader> eth_;
  std::vector<VlanTag> vlans_;
  bool qinq_outer_ = false;
  std::optional<Ipv4Header> ipv4_;
  std::optional<Ipv6Header> ipv6_;
  std::optional<UdpHeader> udp_;
  std::optional<TcpHeader> tcp_;
  std::optional<IcmpHeader> icmp_;
  Bytes payload_;
  std::size_t min_frame_ = 60;
};

// --- In-place transformations (the datapath edit primitives) ---------------

/// Push a GRE/IPv4 delivery header in front of the IP payload of `frame`.
/// The original Ethernet header is kept; the original IP packet becomes the
/// GRE payload. Returns false if the frame has no outer IPv4 layer.
bool encapsulate_gre(Bytes& frame, Ipv4Address tunnel_src,
                     Ipv4Address tunnel_dst, std::uint8_t ttl = 64);

/// Push a full VXLAN stack (outer Ethernet/IPv4/UDP/VXLAN) around the whole
/// original frame.
bool encapsulate_vxlan(Bytes& frame, MacAddress outer_dst, MacAddress outer_src,
                       Ipv4Address tunnel_src, Ipv4Address tunnel_dst,
                       std::uint32_t vni, std::uint16_t src_port = 49152);

/// Push an IP-in-IP delivery header (protocol 4).
bool encapsulate_ipip(Bytes& frame, Ipv4Address tunnel_src,
                      Ipv4Address tunnel_dst, std::uint8_t ttl = 64);

/// Push an IPv6 delivery header (next-header 4) in front of the frame's
/// IPv4 packet — the lw4o6 softwire encapsulation (RFC 7596). The original
/// Ethernet header (and any VLAN tags) are kept; the EtherType flips to
/// IPv6. In-place: the 40-byte shim is inserted into the existing buffer,
/// so a pooled packet's capacity is reused after the first growth. Returns
/// false when the frame carries no outer IPv4 layer.
bool encapsulate_ipv4_in_ipv6(Bytes& frame, const Ipv6Address& tunnel_src,
                              const Ipv6Address& tunnel_dst,
                              std::uint8_t hop_limit = 64);

/// Strip an IPv6 delivery header whose next-header is 4, restoring the
/// inner IPv4 packet behind the original L2 — the lw4o6 decapsulation.
/// Allocation-free (erase + 2-byte EtherType patch). Returns false when the
/// frame is not IPv4-in-IPv6.
bool decapsulate_ipv4_in_ipv6(Bytes& frame);

/// Strip a recognized GRE/VXLAN/IP-in-IP delivery header, restoring the
/// inner packet as a standalone frame. Returns false when `frame` carries no
/// recognized tunnel.
bool decapsulate(Bytes& frame);

/// Insert a 802.1Q tag after the Ethernet header. Returns false only if the
/// frame is too short to hold an Ethernet header.
bool push_vlan(Bytes& frame, std::uint16_t vid, std::uint8_t pcp = 0,
               EtherType tpid = EtherType::vlan);

/// Remove the outermost VLAN tag; false when none present.
bool pop_vlan(Bytes& frame);

/// Rewrite the IPv4 source address in place, patching the IPv4 header
/// checksum and any TCP/UDP checksum incrementally (RFC 1624) — the exact
/// operation the paper's NAT case study performs at line rate.
bool rewrite_ipv4_src(Bytes& frame, const ParsedPacket& parsed,
                      Ipv4Address new_src);

/// Same for the destination address (reverse NAT direction).
bool rewrite_ipv4_dst(Bytes& frame, const ParsedPacket& parsed,
                      Ipv4Address new_dst);

/// Decrement TTL and patch the header checksum; false if TTL already 0.
bool decrement_ttl(Bytes& frame, const ParsedPacket& parsed);

}  // namespace flexsfp::net
