// Byte-buffer primitives shared by every protocol module.
//
// All multi-byte protocol fields on the wire are big-endian; the helpers here
// convert between host integers and network byte order at explicit offsets so
// header code never does manual shifting.
//
// The accessors are defined inline: parsing and serialization call them tens
// of times per packet, and an out-of-line call (plus span materialization)
// per field dominated the simulation hot path. Only the failure path — a
// descriptive std::out_of_range — stays out of line, keeping the inlined
// fast path to a compare-and-branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace flexsfp::net {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;
using BytesSpan = std::span<std::uint8_t>;

namespace detail {
[[noreturn]] void throw_byte_range(std::size_t size, std::size_t offset,
                                   std::size_t width);

inline void check_range(std::size_t size, std::size_t offset,
                        std::size_t width) {
  if (offset + width > size) [[unlikely]] {
    throw_byte_range(size, offset, width);
  }
}
}  // namespace detail

/// Read a big-endian unsigned integer of width N bytes at `offset`.
/// Precondition: offset + N <= data.size() (checked, throws std::out_of_range).
[[nodiscard]] inline std::uint8_t read_u8(BytesView data, std::size_t offset) {
  detail::check_range(data.size(), offset, 1);
  return data[offset];
}

[[nodiscard]] inline std::uint16_t read_be16(BytesView data,
                                             std::size_t offset) {
  detail::check_range(data.size(), offset, 2);
  return static_cast<std::uint16_t>((data[offset] << 8) | data[offset + 1]);
}

[[nodiscard]] inline std::uint32_t read_be32(BytesView data,
                                             std::size_t offset) {
  detail::check_range(data.size(), offset, 4);
  return (static_cast<std::uint32_t>(data[offset]) << 24) |
         (static_cast<std::uint32_t>(data[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(data[offset + 2]) << 8) |
         static_cast<std::uint32_t>(data[offset + 3]);
}

[[nodiscard]] inline std::uint64_t read_be64(BytesView data,
                                             std::size_t offset) {
  detail::check_range(data.size(), offset, 8);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    value = (value << 8) | data[offset + i];
  }
  return value;
}

/// Write a big-endian unsigned integer at `offset` (throws std::out_of_range
/// when the write would not fit).
inline void write_u8(BytesSpan data, std::size_t offset, std::uint8_t value) {
  detail::check_range(data.size(), offset, 1);
  data[offset] = value;
}

inline void write_be16(BytesSpan data, std::size_t offset,
                       std::uint16_t value) {
  detail::check_range(data.size(), offset, 2);
  data[offset] = static_cast<std::uint8_t>(value >> 8);
  data[offset + 1] = static_cast<std::uint8_t>(value & 0xff);
}

inline void write_be32(BytesSpan data, std::size_t offset,
                       std::uint32_t value) {
  detail::check_range(data.size(), offset, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    data[offset + i] = static_cast<std::uint8_t>(value >> (24 - 8 * i));
  }
}

inline void write_be64(BytesSpan data, std::size_t offset,
                       std::uint64_t value) {
  detail::check_range(data.size(), offset, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    data[offset + i] = static_cast<std::uint8_t>(value >> (56 - 8 * i));
  }
}

/// Render `data` as the conventional two-digit-hex dump, 16 bytes per line,
/// with an ASCII gutter. Intended for diagnostics and example output.
[[nodiscard]] std::string hex_dump(BytesView data);

/// Render `data` as a compact "aa:bb:cc" string (no line breaks).
[[nodiscard]] std::string to_hex(BytesView data, char separator = ':');

}  // namespace flexsfp::net
