// Byte-buffer primitives shared by every protocol module.
//
// All multi-byte protocol fields on the wire are big-endian; the helpers here
// convert between host integers and network byte order at explicit offsets so
// header code never does manual shifting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace flexsfp::net {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;
using BytesSpan = std::span<std::uint8_t>;

/// Read a big-endian unsigned integer of width N bytes at `offset`.
/// Precondition: offset + N <= data.size() (checked, throws std::out_of_range).
[[nodiscard]] std::uint8_t read_u8(BytesView data, std::size_t offset);
[[nodiscard]] std::uint16_t read_be16(BytesView data, std::size_t offset);
[[nodiscard]] std::uint32_t read_be32(BytesView data, std::size_t offset);
[[nodiscard]] std::uint64_t read_be64(BytesView data, std::size_t offset);

/// Write a big-endian unsigned integer at `offset` (throws std::out_of_range
/// when the write would not fit).
void write_u8(BytesSpan data, std::size_t offset, std::uint8_t value);
void write_be16(BytesSpan data, std::size_t offset, std::uint16_t value);
void write_be32(BytesSpan data, std::size_t offset, std::uint32_t value);
void write_be64(BytesSpan data, std::size_t offset, std::uint64_t value);

/// Render `data` as the conventional two-digit-hex dump, 16 bytes per line,
/// with an ASCII gutter. Intended for diagnostics and example output.
[[nodiscard]] std::string hex_dump(BytesView data);

/// Render `data` as a compact "aa:bb:cc" string (no line breaks).
[[nodiscard]] std::string to_hex(BytesView data, char separator = ':');

}  // namespace flexsfp::net
