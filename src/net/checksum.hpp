// Internet checksum (RFC 1071), incremental update (RFC 1624) and Ethernet
// CRC32 used by the frame check sequence.
#pragma once

#include <cstdint>

#include "net/bytes.hpp"

namespace flexsfp::net {

/// One's-complement sum over `data` folded to 16 bits but NOT complemented;
/// use this to accumulate over several regions (e.g. pseudo-header + payload).
[[nodiscard]] std::uint32_t checksum_partial(BytesView data,
                                             std::uint32_t initial = 0);

/// Fold a partial sum and complement it into a final checksum field value.
[[nodiscard]] std::uint16_t checksum_finish(std::uint32_t partial);

/// Full RFC 1071 checksum over a single buffer.
[[nodiscard]] std::uint16_t internet_checksum(BytesView data);

/// RFC 1624 incremental update: new checksum after a 16-bit word in the
/// covered data changes from `old_word` to `new_word`.
///
/// This is what the FlexSFP NAT datapath uses: rewriting the source address
/// only touches two 16-bit words, so the IPv4/TCP/UDP checksums are patched
/// in O(1) instead of re-summing the packet.
[[nodiscard]] std::uint16_t checksum_incremental_update(
    std::uint16_t old_checksum, std::uint16_t old_word, std::uint16_t new_word);

/// Incremental update for a 32-bit field change (two word updates).
[[nodiscard]] std::uint16_t checksum_incremental_update32(
    std::uint16_t old_checksum, std::uint32_t old_value,
    std::uint32_t new_value);

/// IEEE 802.3 CRC32 (reflected, polynomial 0xEDB88320) as used by the
/// Ethernet frame check sequence.
[[nodiscard]] std::uint32_t crc32(BytesView data,
                                  std::uint32_t initial = 0xffffffffu);

}  // namespace flexsfp::net
