#include "net/bytes.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace flexsfp::net {

namespace {

void check_range(std::size_t size, std::size_t offset, std::size_t width) {
  if (offset + width > size) {
    throw std::out_of_range("byte access at offset " + std::to_string(offset) +
                            " width " + std::to_string(width) +
                            " exceeds buffer of " + std::to_string(size));
  }
}

}  // namespace

std::uint8_t read_u8(BytesView data, std::size_t offset) {
  check_range(data.size(), offset, 1);
  return data[offset];
}

std::uint16_t read_be16(BytesView data, std::size_t offset) {
  check_range(data.size(), offset, 2);
  return static_cast<std::uint16_t>((data[offset] << 8) | data[offset + 1]);
}

std::uint32_t read_be32(BytesView data, std::size_t offset) {
  check_range(data.size(), offset, 4);
  return (static_cast<std::uint32_t>(data[offset]) << 24) |
         (static_cast<std::uint32_t>(data[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(data[offset + 2]) << 8) |
         static_cast<std::uint32_t>(data[offset + 3]);
}

std::uint64_t read_be64(BytesView data, std::size_t offset) {
  check_range(data.size(), offset, 8);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    value = (value << 8) | data[offset + i];
  }
  return value;
}

void write_u8(BytesSpan data, std::size_t offset, std::uint8_t value) {
  check_range(data.size(), offset, 1);
  data[offset] = value;
}

void write_be16(BytesSpan data, std::size_t offset, std::uint16_t value) {
  check_range(data.size(), offset, 2);
  data[offset] = static_cast<std::uint8_t>(value >> 8);
  data[offset + 1] = static_cast<std::uint8_t>(value & 0xff);
}

void write_be32(BytesSpan data, std::size_t offset, std::uint32_t value) {
  check_range(data.size(), offset, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    data[offset + i] = static_cast<std::uint8_t>(value >> (24 - 8 * i));
  }
}

void write_be64(BytesSpan data, std::size_t offset, std::uint64_t value) {
  check_range(data.size(), offset, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    data[offset + i] = static_cast<std::uint8_t>(value >> (56 - 8 * i));
  }
}

std::string hex_dump(BytesView data) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t line = 0; line < data.size(); line += 16) {
    // Offset column.
    std::array<char, 8> off{};
    std::size_t v = line;
    for (int i = 7; i >= 0; --i) {
      off[static_cast<std::size_t>(i)] = digits[v & 0xf];
      v >>= 4;
    }
    out.append(off.data(), off.size());
    out += "  ";
    std::string ascii;
    for (std::size_t i = 0; i < 16; ++i) {
      if (line + i < data.size()) {
        const std::uint8_t b = data[line + i];
        out += digits[b >> 4];
        out += digits[b & 0xf];
        out += ' ';
        ascii += std::isprint(b) != 0 ? static_cast<char>(b) : '.';
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += " |" + ascii + "|\n";
  }
  return out;
}

std::string to_hex(BytesView data, char separator) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) out += separator;
    out += digits[data[i] >> 4];
    out += digits[data[i] & 0xf];
  }
  return out;
}

}  // namespace flexsfp::net
