#include "net/bytes.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace flexsfp::net {

void detail::throw_byte_range(std::size_t size, std::size_t offset,
                              std::size_t width) {
  throw std::out_of_range("byte access at offset " + std::to_string(offset) +
                          " width " + std::to_string(width) +
                          " exceeds buffer of " + std::to_string(size));
}

std::string hex_dump(BytesView data) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t line = 0; line < data.size(); line += 16) {
    // Offset column.
    std::array<char, 8> off{};
    std::size_t v = line;
    for (int i = 7; i >= 0; --i) {
      off[static_cast<std::size_t>(i)] = digits[v & 0xf];
      v >>= 4;
    }
    out.append(off.data(), off.size());
    out += "  ";
    std::string ascii;
    for (std::size_t i = 0; i < 16; ++i) {
      if (line + i < data.size()) {
        const std::uint8_t b = data[line + i];
        out += digits[b >> 4];
        out += digits[b & 0xf];
        out += ' ';
        ascii += std::isprint(b) != 0 ? static_cast<char>(b) : '.';
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += " |" + ascii + "|\n";
  }
  return out;
}

std::string to_hex(BytesView data, char separator) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) out += separator;
    out += digits[data[i] >> 4];
    out += digits[data[i] & 0xf];
  }
  return out;
}

}  // namespace flexsfp::net
