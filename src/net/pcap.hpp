// Minimal libpcap-format file I/O so example traces can be inspected with
// standard tooling (tcpdump/wireshark). Classic pcap format, LINKTYPE_ETHERNET,
// microsecond timestamps.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "net/bytes.hpp"

namespace flexsfp::net {

struct PcapRecord {
  std::int64_t timestamp_us = 0;
  Bytes data;
};

/// Streaming pcap writer; the header is emitted on construction.
class PcapWriter {
 public:
  /// Throws std::runtime_error if the file cannot be opened.
  explicit PcapWriter(const std::string& path);

  void write(const PcapRecord& record);
  void write(BytesView frame, std::int64_t timestamp_us);
  [[nodiscard]] std::size_t records_written() const { return count_; }

 private:
  std::ofstream out_;
  std::size_t count_ = 0;
};

/// Read every record of a classic pcap file; returns nullopt when the file
/// is missing or has a bad magic/linktype.
[[nodiscard]] std::optional<std::vector<PcapRecord>> read_pcap(
    const std::string& path);

}  // namespace flexsfp::net
