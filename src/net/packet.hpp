// The unit of work that flows through the simulated datapath.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "net/bytes.hpp"

namespace flexsfp::net {

/// Monotonic per-simulation packet identity, handy for tracing.
using PacketId = std::uint64_t;

/// A packet: the on-wire bytes (Ethernet frame without preamble/FCS) plus
/// simulation metadata that a real datapath would carry as side-band signals.
class Packet {
 public:
  Packet() = default;
  explicit Packet(Bytes data) : data_(std::move(data)) {}

  [[nodiscard]] const Bytes& data() const { return data_; }
  [[nodiscard]] Bytes& data() { return data_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Total bytes the frame occupies on a 10GBASE-R wire: payload plus
  /// preamble+SFD (8), FCS (4) and minimum inter-packet gap (12). Line-rate
  /// arithmetic must use this, not size().
  [[nodiscard]] std::size_t wire_size() const { return data_.size() + 24; }

  // --- simulation metadata -------------------------------------------------

  [[nodiscard]] PacketId id() const { return id_; }
  void set_id(PacketId id) { id_ = id; }

  /// Picoseconds since simulation start when the first bit entered the
  /// module under test; used for latency accounting.
  [[nodiscard]] std::int64_t ingress_time_ps() const {
    return ingress_time_ps_;
  }
  void set_ingress_time_ps(std::int64_t t) { ingress_time_ps_ = t; }

  /// When the traffic source emitted the packet (end-to-end latency base;
  /// unlike ingress_time_ps this is never overwritten downstream).
  [[nodiscard]] std::int64_t created_time_ps() const {
    return created_time_ps_;
  }
  void set_created_time_ps(std::int64_t t) { created_time_ps_ = t; }

  /// Which module interface the packet arrived on (0 = edge/electrical,
  /// 1 = optical). Architecture shells use this for demux decisions.
  [[nodiscard]] int ingress_port() const { return ingress_port_; }
  void set_ingress_port(int port) { ingress_port_ = port; }

  /// Scratch metadata word usable by pipeline stages (models per-packet
  /// metadata bus in an RMT-style design).
  [[nodiscard]] std::uint64_t user_metadata() const { return user_metadata_; }
  void set_user_metadata(std::uint64_t v) { user_metadata_ = v; }

 private:
  Bytes data_;
  PacketId id_ = 0;
  std::int64_t ingress_time_ps_ = 0;
  std::int64_t created_time_ps_ = 0;
  int ingress_port_ = 0;
  std::uint64_t user_metadata_ = 0;
};

using PacketPtr = std::shared_ptr<Packet>;

[[nodiscard]] inline PacketPtr make_packet(Bytes data) {
  return std::make_shared<Packet>(std::move(data));
}

}  // namespace flexsfp::net
