// The unit of work that flows through the simulated datapath.
//
// Packets are intrusively refcounted and normally live in a PacketPool
// (net/packet_pool.hpp): PacketPtr is the pool-aware smart pointer behind
// which the whole datapath already programs, and releasing the last
// reference returns the buffer — payload capacity included — to its pool's
// free list instead of the heap. The refcount is deliberately non-atomic:
// a packet belongs to exactly one shard (one Simulation, one thread) at a
// time, and the only cross-thread handoff in the codebase is the parallel
// testbed's join barrier, which synchronizes. See DESIGN.md §9.
#pragma once

#include <cstdint>
#include <utility>

#include "net/bytes.hpp"

namespace flexsfp::net {

class Packet;
class PacketPool;

namespace detail {
struct PacketPoolCore;
/// Out-of-line last-reference path: recycle into the owning pool, or plain
/// delete for heap-fallback and orphaned packets.
void release_packet(Packet* packet);
}  // namespace detail

/// Monotonic per-simulation packet identity, handy for tracing.
using PacketId = std::uint64_t;

/// A packet: the on-wire bytes (Ethernet frame without preamble/FCS) plus
/// simulation metadata that a real datapath would carry as side-band signals.
class Packet {
 public:
  Packet() = default;
  explicit Packet(Bytes data) : data_(std::move(data)) {}
  /// Copying duplicates the wire bytes and metadata but never the intrusive
  /// bookkeeping — the copy starts unreferenced and pool-less.
  Packet(const Packet& other) : data_(other.data_) { copy_metadata(other); }
  Packet& operator=(const Packet& other) {
    data_ = other.data_;
    copy_metadata(other);
    return *this;
  }
  Packet(Packet&& other) noexcept : data_(std::move(other.data_)) {
    copy_metadata(other);
  }
  Packet& operator=(Packet&& other) noexcept {
    data_ = std::move(other.data_);
    copy_metadata(other);
    return *this;
  }

  [[nodiscard]] const Bytes& data() const { return data_; }
  [[nodiscard]] Bytes& data() { return data_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Total bytes the frame occupies on a 10GBASE-R wire: payload plus
  /// preamble+SFD (8), FCS (4) and minimum inter-packet gap (12). Line-rate
  /// arithmetic must use this, not size().
  [[nodiscard]] std::size_t wire_size() const { return data_.size() + 24; }

  // --- simulation metadata -------------------------------------------------

  [[nodiscard]] PacketId id() const { return id_; }
  void set_id(PacketId id) { id_ = id; }

  /// Picoseconds since simulation start when the first bit entered the
  /// module under test; used for latency accounting.
  [[nodiscard]] std::int64_t ingress_time_ps() const {
    return ingress_time_ps_;
  }
  void set_ingress_time_ps(std::int64_t t) { ingress_time_ps_ = t; }

  /// When the traffic source emitted the packet (end-to-end latency base;
  /// unlike ingress_time_ps this is never overwritten downstream).
  [[nodiscard]] std::int64_t created_time_ps() const {
    return created_time_ps_;
  }
  void set_created_time_ps(std::int64_t t) { created_time_ps_ = t; }

  /// Which module interface the packet arrived on (0 = edge/electrical,
  /// 1 = optical). Architecture shells use this for demux decisions.
  [[nodiscard]] int ingress_port() const { return ingress_port_; }
  void set_ingress_port(int port) { ingress_port_ = port; }

  /// Scratch metadata word usable by pipeline stages (models per-packet
  /// metadata bus in an RMT-style design).
  [[nodiscard]] std::uint64_t user_metadata() const { return user_metadata_; }
  void set_user_metadata(std::uint64_t v) { user_metadata_ = v; }

 private:
  friend class PacketPtr;
  friend class PacketPool;
  friend void detail::release_packet(Packet* packet);

  void copy_metadata(const Packet& other) {
    id_ = other.id_;
    ingress_time_ps_ = other.ingress_time_ps_;
    created_time_ps_ = other.created_time_ps_;
    ingress_port_ = other.ingress_port_;
    user_metadata_ = other.user_metadata_;
  }

  /// Scrub simulation state before the buffer re-enters the free list. The
  /// payload vector is cleared, not shrunk — capacity reuse is the point.
  void reset_for_reuse() {
    data_.clear();
    id_ = 0;
    ingress_time_ps_ = 0;
    created_time_ps_ = 0;
    ingress_port_ = 0;
    user_metadata_ = 0;
  }

  Bytes data_;
  PacketId id_ = 0;
  std::int64_t ingress_time_ps_ = 0;
  std::int64_t created_time_ps_ = 0;
  int ingress_port_ = 0;
  std::uint64_t user_metadata_ = 0;
  // Intrusive bookkeeping (owned by PacketPtr / PacketPool, never copied).
  std::uint32_t refs_ = 0;
  detail::PacketPoolCore* pool_core_ = nullptr;
};

/// Intrusive, pool-aware shared handle with the std::shared_ptr surface the
/// call sites use (copy/move, ->, *, bool, get, reset, use_count). The
/// count is not atomic — see the Packet class comment for the ownership
/// rule that makes that safe.
class PacketPtr {
 public:
  PacketPtr() = default;
  PacketPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  PacketPtr(const PacketPtr& other) : packet_(other.packet_) {
    if (packet_ != nullptr) ++packet_->refs_;
  }
  PacketPtr(PacketPtr&& other) noexcept : packet_(other.packet_) {
    other.packet_ = nullptr;
  }
  PacketPtr& operator=(const PacketPtr& other) {
    PacketPtr(other).swap(*this);
    return *this;
  }
  PacketPtr& operator=(PacketPtr&& other) noexcept {
    PacketPtr(std::move(other)).swap(*this);
    return *this;
  }
  ~PacketPtr() {
    if (packet_ != nullptr && --packet_->refs_ == 0) {
      detail::release_packet(packet_);
    }
  }

  /// Wrap a packet whose refcount is already 1 (pool allocation path).
  [[nodiscard]] static PacketPtr adopt(Packet* packet) {
    PacketPtr ptr;
    ptr.packet_ = packet;
    return ptr;
  }

  [[nodiscard]] Packet* get() const { return packet_; }
  [[nodiscard]] Packet& operator*() const { return *packet_; }
  [[nodiscard]] Packet* operator->() const { return packet_; }
  [[nodiscard]] explicit operator bool() const { return packet_ != nullptr; }
  [[nodiscard]] std::uint32_t use_count() const {
    return packet_ != nullptr ? packet_->refs_ : 0;
  }
  void reset() { PacketPtr().swap(*this); }
  void swap(PacketPtr& other) noexcept { std::swap(packet_, other.packet_); }

  friend bool operator==(const PacketPtr& a, const PacketPtr& b) {
    return a.packet_ == b.packet_;
  }
  friend bool operator==(const PacketPtr& a, std::nullptr_t) {
    return a.packet_ == nullptr;
  }

 private:
  Packet* packet_ = nullptr;
};

/// Wrap `data` in a pooled packet from the calling thread's fallback pool.
/// Components that run inside a Simulation should prefer
/// sim.packet_pool().make() so the allocation is accounted per shard.
[[nodiscard]] PacketPtr make_packet(Bytes data = {});
[[nodiscard]] PacketPtr make_packet(Packet frame);

/// Detach a self-contained value copy of a pooled packet's frame (wire
/// bytes + simulation metadata, no intrusive bookkeeping) for cross-shard
/// handoff. The copy is taken on the thread that owns the source pool,
/// carried across the window barrier as a plain value, and re-pooled on the
/// destination shard with its pool's make_from() — raw PacketPtrs must
/// never cross shards, because the refcount is non-atomic and the free list
/// is single-threaded.
[[nodiscard]] inline Packet detach_frame(const Packet& packet) {
  return packet;
}

}  // namespace flexsfp::net
