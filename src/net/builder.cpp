#include "net/builder.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

#include "net/checksum.hpp"

namespace flexsfp::net {

PacketBuilder& PacketBuilder::ethernet(MacAddress dst, MacAddress src,
                                       EtherType type) {
  EthernetHeader h;
  h.dst = dst;
  h.src = src;
  h.ether_type = static_cast<std::uint16_t>(type);
  eth_ = h;
  return *this;
}

PacketBuilder& PacketBuilder::vlan(std::uint16_t vid, std::uint8_t pcp) {
  VlanTag tag;
  tag.vid = vid;
  tag.pcp = pcp;
  vlans_.push_back(tag);
  return *this;
}

PacketBuilder& PacketBuilder::qinq(std::uint16_t service_vid,
                                   std::uint16_t customer_vid) {
  qinq_outer_ = true;
  vlan(service_vid);
  vlan(customer_vid);
  return *this;
}

PacketBuilder& PacketBuilder::ipv4(Ipv4Address src, Ipv4Address dst,
                                   IpProto proto, std::uint8_t ttl) {
  Ipv4Header h;
  h.src = src;
  h.dst = dst;
  h.protocol = static_cast<std::uint8_t>(proto);
  h.ttl = ttl;
  ipv4_ = h;
  return *this;
}

PacketBuilder& PacketBuilder::ipv4_header(const Ipv4Header& header) {
  ipv4_ = header;
  return *this;
}

PacketBuilder& PacketBuilder::ipv6(Ipv6Address src, Ipv6Address dst,
                                   IpProto next, std::uint8_t hop_limit) {
  Ipv6Header h;
  h.src = src;
  h.dst = dst;
  h.next_header = static_cast<std::uint8_t>(next);
  h.hop_limit = hop_limit;
  ipv6_ = h;
  return *this;
}

PacketBuilder& PacketBuilder::udp(std::uint16_t src_port,
                                  std::uint16_t dst_port) {
  UdpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  udp_ = h;
  return *this;
}

PacketBuilder& PacketBuilder::tcp(std::uint16_t src_port,
                                  std::uint16_t dst_port, std::uint8_t flags) {
  TcpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.flags = flags;
  h.window = 0xffff;
  tcp_ = h;
  return *this;
}

PacketBuilder& PacketBuilder::icmp_echo(std::uint16_t id, std::uint16_t seq) {
  IcmpHeader h;
  h.type = 8;  // echo request
  h.rest = (std::uint32_t{id} << 16) | seq;
  icmp_ = h;
  return *this;
}

PacketBuilder& PacketBuilder::payload(Bytes bytes) {
  payload_ = std::move(bytes);
  return *this;
}

PacketBuilder& PacketBuilder::payload_size(std::size_t size) {
  // The pattern has period 256 and every chunk below starts at a multiple
  // of 256, so block-copying a prebuilt table reproduces (i & 0xff) exactly.
  static constexpr auto pattern = [] {
    std::array<std::uint8_t, 256> table{};
    for (std::size_t i = 0; i < table.size(); ++i) {
      table[i] = static_cast<std::uint8_t>(i);
    }
    return table;
  }();
  payload_.resize(size);
  for (std::size_t i = 0; i < size; i += pattern.size()) {
    std::memcpy(payload_.data() + i, pattern.data(),
                std::min(pattern.size(), size - i));
  }
  return *this;
}

PacketBuilder& PacketBuilder::min_frame_size(std::size_t size) {
  min_frame_ = size;
  return *this;
}

Bytes PacketBuilder::build() const {
  Bytes frame;
  build_into(frame);
  return frame;
}

PacketBuilder& PacketBuilder::reset() {
  eth_.reset();
  vlans_.clear();
  qinq_outer_ = false;
  ipv4_.reset();
  ipv6_.reset();
  udp_.reset();
  tcp_.reset();
  icmp_.reset();
  payload_.clear();  // capacity survives for the next payload_size()
  min_frame_ = 60;
  return *this;
}

void PacketBuilder::build_into(Bytes& frame) const {
  if (!eth_) throw std::logic_error("PacketBuilder: ethernet layer required");

  std::size_t l4_size = 0;
  if (udp_) l4_size = UdpHeader::size();
  if (tcp_) l4_size = tcp_->size();
  if (icmp_) l4_size = IcmpHeader::size();

  std::size_t l3_size = 0;
  if (ipv4_) l3_size = ipv4_->size();
  if (ipv6_) l3_size = Ipv6Header::size();

  const std::size_t l2_size =
      EthernetHeader::size() + vlans_.size() * VlanTag::size();
  const std::size_t total =
      l2_size + l3_size + l4_size + payload_.size();

  frame.assign(std::max(total, min_frame_), 0);

  // Ethernet (+ VLAN stack): chain the ether types.
  EthernetHeader eth = *eth_;
  std::vector<VlanTag> vlans = vlans_;
  if (!vlans.empty()) {
    const std::uint16_t payload_type = eth.ether_type;
    eth.ether_type = static_cast<std::uint16_t>(
        qinq_outer_ ? EtherType::qinq : EtherType::vlan);
    for (std::size_t i = 0; i + 1 < vlans.size(); ++i) {
      vlans[i].ether_type = static_cast<std::uint16_t>(EtherType::vlan);
    }
    vlans.back().ether_type = payload_type;
  } else if (ipv4_) {
    eth.ether_type = static_cast<std::uint16_t>(EtherType::ipv4);
  } else if (ipv6_) {
    eth.ether_type = static_cast<std::uint16_t>(EtherType::ipv6);
  }
  eth.serialize_to(frame, 0);
  std::size_t offset = EthernetHeader::size();
  for (const auto& tag : vlans) {
    tag.serialize_to(frame, offset);
    offset += VlanTag::size();
  }

  const std::size_t l3_offset = offset;
  std::uint32_t pseudo_sum = 0;  // pseudo-header partial sum for L4 checksums

  if (ipv4_) {
    Ipv4Header ip = *ipv4_;
    ip.total_length =
        static_cast<std::uint16_t>(l3_size + l4_size + payload_.size());
    ip.serialize_to(frame, l3_offset);
    if (ip.checksum == 0) {
      ip.checksum = ip.compute_checksum();
    }
    write_be16(frame, l3_offset + 10, ip.checksum);
    std::uint8_t pseudo[12];
    BytesSpan p{pseudo, sizeof pseudo};
    write_be32(p, 0, ip.src.value());
    write_be32(p, 4, ip.dst.value());
    pseudo[8] = 0;
    pseudo[9] = ip.protocol;
    write_be16(p, 10, static_cast<std::uint16_t>(l4_size + payload_.size()));
    pseudo_sum = checksum_partial(BytesView{pseudo, sizeof pseudo});
    offset += ip.size();
  } else if (ipv6_) {
    Ipv6Header ip = *ipv6_;
    ip.payload_length = static_cast<std::uint16_t>(l4_size + payload_.size());
    ip.serialize_to(frame, l3_offset);
    std::uint8_t pseudo[40];
    BytesSpan p{pseudo, sizeof pseudo};
    for (std::size_t i = 0; i < 16; ++i) pseudo[i] = ip.src.octets()[i];
    for (std::size_t i = 0; i < 16; ++i) pseudo[16 + i] = ip.dst.octets()[i];
    write_be32(p, 32, ip.payload_length);
    write_be32(p, 36, ip.next_header);
    pseudo_sum = checksum_partial(BytesView{pseudo, sizeof pseudo});
    offset += Ipv6Header::size();
  }

  const std::size_t l4_offset = offset;
  // Payload first so L4 checksums can cover it.
  std::copy(payload_.begin(), payload_.end(),
            frame.begin() +
                static_cast<std::ptrdiff_t>(l4_offset + l4_size));

  if (udp_) {
    UdpHeader h = *udp_;
    h.length = static_cast<std::uint16_t>(UdpHeader::size() + payload_.size());
    h.checksum = 0;
    h.serialize_to(frame, l4_offset);
    const BytesView covered{frame.data() + l4_offset,
                            UdpHeader::size() + payload_.size()};
    std::uint16_t checksum =
        checksum_finish(checksum_partial(covered, pseudo_sum));
    if (checksum == 0) checksum = 0xffff;  // RFC 768: 0 means "no checksum"
    write_be16(frame, l4_offset + 6, checksum);
  } else if (tcp_) {
    TcpHeader h = *tcp_;
    h.checksum = 0;
    h.serialize_to(frame, l4_offset);
    const BytesView covered{frame.data() + l4_offset,
                            h.size() + payload_.size()};
    const std::uint16_t checksum =
        checksum_finish(checksum_partial(covered, pseudo_sum));
    write_be16(frame, l4_offset + 16, checksum);
  } else if (icmp_) {
    IcmpHeader h = *icmp_;
    h.checksum = 0;
    h.serialize_to(frame, l4_offset);
    const BytesView covered{frame.data() + l4_offset,
                            IcmpHeader::size() + payload_.size()};
    const std::uint16_t checksum = internet_checksum(covered);
    write_be16(frame, l4_offset + 2, checksum);
  }
}

Packet PacketBuilder::build_packet() const { return Packet{build()}; }

namespace {

// Rebuild an IPv4 delivery header in front of `inner_ip_bytes` and glue the
// original Ethernet header on top. Shared by GRE and IP-in-IP encap.
Bytes wrap_in_ipv4(BytesView l2, BytesView inner, Ipv4Address tunnel_src,
                   Ipv4Address tunnel_dst, IpProto proto, std::uint8_t ttl,
                   BytesView shim = {}) {
  Ipv4Header outer;
  outer.src = tunnel_src;
  outer.dst = tunnel_dst;
  outer.protocol = static_cast<std::uint8_t>(proto);
  outer.ttl = ttl;
  outer.total_length = static_cast<std::uint16_t>(
      outer.size() + shim.size() + inner.size());

  Bytes frame(l2.size() + outer.size() + shim.size() + inner.size());
  std::copy(l2.begin(), l2.end(), frame.begin());
  outer.serialize_to(frame, l2.size());
  const std::uint16_t checksum = outer.compute_checksum();
  write_be16(frame, l2.size() + 10, checksum);
  std::copy(shim.begin(), shim.end(),
            frame.begin() + static_cast<std::ptrdiff_t>(l2.size() + outer.size()));
  std::copy(inner.begin(), inner.end(),
            frame.begin() + static_cast<std::ptrdiff_t>(l2.size() + outer.size() +
                                                        shim.size()));
  return frame;
}

}  // namespace

bool encapsulate_gre(Bytes& frame, Ipv4Address tunnel_src,
                     Ipv4Address tunnel_dst, std::uint8_t ttl) {
  const auto parsed = parse_packet(frame, {.parse_tunnels = false});
  if (!parsed.ok() || !parsed.outer.ipv4) return false;
  const std::size_t l3 = parsed.outer.l3_offset;
  std::uint8_t shim[GreHeader::size()];
  GreHeader gre;
  gre.protocol = static_cast<std::uint16_t>(EtherType::ipv4);
  gre.serialize_to(BytesSpan{shim, sizeof shim}, 0);
  frame = wrap_in_ipv4(BytesView{frame.data(), l3},
                       BytesView{frame.data() + l3, frame.size() - l3},
                       tunnel_src, tunnel_dst, IpProto::gre, ttl,
                       BytesView{shim, sizeof shim});
  return true;
}

bool encapsulate_ipip(Bytes& frame, Ipv4Address tunnel_src,
                      Ipv4Address tunnel_dst, std::uint8_t ttl) {
  const auto parsed = parse_packet(frame, {.parse_tunnels = false});
  if (!parsed.ok() || !parsed.outer.ipv4) return false;
  const std::size_t l3 = parsed.outer.l3_offset;
  frame = wrap_in_ipv4(BytesView{frame.data(), l3},
                       BytesView{frame.data() + l3, frame.size() - l3},
                       tunnel_src, tunnel_dst, IpProto::ipv4_encap, ttl);
  return true;
}

bool encapsulate_ipv4_in_ipv6(Bytes& frame, const Ipv6Address& tunnel_src,
                              const Ipv6Address& tunnel_dst,
                              std::uint8_t hop_limit) {
  const auto parsed = parse_packet(frame, {.parse_tunnels = false});
  if (!parsed.ok() || !parsed.outer.ipv4) return false;
  const std::size_t l3 = parsed.outer.l3_offset;

  Ipv6Header outer;
  outer.src = tunnel_src;
  outer.dst = tunnel_dst;
  outer.next_header = static_cast<std::uint8_t>(IpProto::ipv4_encap);
  outer.hop_limit = hop_limit;
  // Cover everything behind L2, including any Ethernet min-frame padding
  // past the inner total_length, so decapsulation restores the original
  // frame byte-for-byte.
  outer.payload_length = static_cast<std::uint16_t>(frame.size() - l3);

  frame.insert(frame.begin() + static_cast<std::ptrdiff_t>(l3),
               Ipv6Header::size(), 0);
  outer.serialize_to(frame, l3);
  write_be16(frame, l3 - 2, static_cast<std::uint16_t>(EtherType::ipv6));
  return true;
}

bool decapsulate_ipv4_in_ipv6(Bytes& frame) {
  const auto parsed = parse_packet(frame, {.parse_tunnels = false});
  if (!parsed.ok() || !parsed.outer.ipv6 ||
      parsed.outer.ipv6->next_header !=
          static_cast<std::uint8_t>(IpProto::ipv4_encap)) {
    return false;
  }
  const std::size_t l3 = parsed.outer.l3_offset;
  if (frame.size() < l3 + Ipv6Header::size()) return false;
  frame.erase(frame.begin() + static_cast<std::ptrdiff_t>(l3),
              frame.begin() + static_cast<std::ptrdiff_t>(l3 +
                                                          Ipv6Header::size()));
  write_be16(frame, l3 - 2, static_cast<std::uint16_t>(EtherType::ipv4));
  return true;
}

bool encapsulate_vxlan(Bytes& frame, MacAddress outer_dst, MacAddress outer_src,
                       Ipv4Address tunnel_src, Ipv4Address tunnel_dst,
                       std::uint32_t vni, std::uint16_t src_port) {
  // Outer frame: Eth / IPv4 / UDP / VXLAN / (original frame).
  const std::size_t inner_size = frame.size();
  const std::size_t headers = EthernetHeader::size() + Ipv4Header::min_size() +
                              UdpHeader::size() + VxlanHeader::size();
  Bytes out(headers + inner_size);

  EthernetHeader eth;
  eth.dst = outer_dst;
  eth.src = outer_src;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::ipv4);
  eth.serialize_to(out, 0);

  Ipv4Header ip;
  ip.src = tunnel_src;
  ip.dst = tunnel_dst;
  ip.protocol = static_cast<std::uint8_t>(IpProto::udp);
  ip.total_length = static_cast<std::uint16_t>(
      Ipv4Header::min_size() + UdpHeader::size() + VxlanHeader::size() +
      inner_size);
  ip.serialize_to(out, EthernetHeader::size());
  write_be16(out, EthernetHeader::size() + 10, ip.compute_checksum());

  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = VxlanHeader::udp_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::size() +
                                          VxlanHeader::size() + inner_size);
  udp.checksum = 0;  // legal for UDP over IPv4; hardware encap commonly omits
  udp.serialize_to(out, EthernetHeader::size() + Ipv4Header::min_size());

  VxlanHeader vxlan;
  vxlan.vni = vni;
  vxlan.serialize_to(out, EthernetHeader::size() + Ipv4Header::min_size() +
                              UdpHeader::size());

  std::copy(frame.begin(), frame.end(),
            out.begin() + static_cast<std::ptrdiff_t>(headers));
  frame = std::move(out);
  return true;
}

bool decapsulate(Bytes& frame) {
  const auto parsed = parse_packet(frame);
  if (!parsed.ok()) return false;

  if (parsed.vxlan && parsed.inner_eth) {
    const std::size_t inner_l2 =
        parsed.outer.payload_offset + VxlanHeader::size();
    frame = Bytes(frame.begin() + static_cast<std::ptrdiff_t>(inner_l2),
                  frame.end());
    return true;
  }
  if (parsed.gre && parsed.inner) {
    // Keep the original L2, splice out outer IP + GRE.
    const std::size_t l3 = parsed.outer.l3_offset;
    const std::size_t inner_l3 = parsed.inner->l3_offset;
    Bytes out(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(l3));
    out.insert(out.end(), frame.begin() + static_cast<std::ptrdiff_t>(inner_l3),
               frame.end());
    frame = std::move(out);
    return true;
  }
  if (parsed.outer.ipv4 &&
      parsed.outer.ipv4->protocol ==
          static_cast<std::uint8_t>(IpProto::ipv4_encap)) {
    const std::size_t l3 = parsed.outer.l3_offset;
    const std::size_t inner_l3 = l3 + parsed.outer.ipv4->size();
    Bytes out(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(l3));
    out.insert(out.end(), frame.begin() + static_cast<std::ptrdiff_t>(inner_l3),
               frame.end());
    frame = std::move(out);
    return true;
  }
  return false;
}

bool push_vlan(Bytes& frame, std::uint16_t vid, std::uint8_t pcp,
               EtherType tpid) {
  auto eth = EthernetHeader::parse(frame, 0);
  if (!eth) return false;
  VlanTag tag;
  tag.vid = vid;
  tag.pcp = pcp;
  tag.ether_type = eth->ether_type;
  eth->ether_type = static_cast<std::uint16_t>(tpid);
  frame.insert(frame.begin() + EthernetHeader::size(), VlanTag::size(), 0);
  eth->serialize_to(frame, 0);
  tag.serialize_to(frame, EthernetHeader::size());
  return true;
}

bool pop_vlan(Bytes& frame) {
  auto eth = EthernetHeader::parse(frame, 0);
  if (!eth) return false;
  if (eth->ether_type != static_cast<std::uint16_t>(EtherType::vlan) &&
      eth->ether_type != static_cast<std::uint16_t>(EtherType::qinq)) {
    return false;
  }
  const auto tag = VlanTag::parse(frame, EthernetHeader::size());
  if (!tag) return false;
  eth->ether_type = tag->ether_type;
  frame.erase(frame.begin() + EthernetHeader::size(),
              frame.begin() + EthernetHeader::size() + VlanTag::size());
  eth->serialize_to(frame, 0);
  return true;
}

namespace {

bool rewrite_ipv4_addr(Bytes& frame, const ParsedPacket& parsed,
                       Ipv4Address new_addr, bool src) {
  if (!parsed.ok() || !parsed.outer.ipv4) return false;
  const auto& ip = *parsed.outer.ipv4;
  const std::size_t l3 = parsed.outer.l3_offset;
  const std::size_t addr_offset = l3 + (src ? 12 : 16);
  const std::uint32_t old_value = (src ? ip.src : ip.dst).value();
  const std::uint32_t new_value = new_addr.value();
  if (old_value == new_value) return true;

  write_be32(frame, addr_offset, new_value);

  // Patch the IPv4 header checksum incrementally.
  const std::uint16_t new_ip_checksum =
      checksum_incremental_update32(ip.checksum, old_value, new_value);
  write_be16(frame, l3 + 10, new_ip_checksum);

  // TCP/UDP checksums cover the pseudo-header, so patch them too.
  if (parsed.outer.tcp) {
    const std::uint16_t patched = checksum_incremental_update32(
        parsed.outer.tcp->checksum, old_value, new_value);
    write_be16(frame, parsed.outer.l4_offset + 16, patched);
  } else if (parsed.outer.udp && parsed.outer.udp->checksum != 0) {
    std::uint16_t patched = checksum_incremental_update32(
        parsed.outer.udp->checksum, old_value, new_value);
    if (patched == 0) patched = 0xffff;
    write_be16(frame, parsed.outer.l4_offset + 6, patched);
  }
  return true;
}

}  // namespace

bool rewrite_ipv4_src(Bytes& frame, const ParsedPacket& parsed,
                      Ipv4Address new_src) {
  return rewrite_ipv4_addr(frame, parsed, new_src, /*src=*/true);
}

bool rewrite_ipv4_dst(Bytes& frame, const ParsedPacket& parsed,
                      Ipv4Address new_dst) {
  return rewrite_ipv4_addr(frame, parsed, new_dst, /*src=*/false);
}

bool decrement_ttl(Bytes& frame, const ParsedPacket& parsed) {
  if (!parsed.ok() || !parsed.outer.ipv4) return false;
  const auto& ip = *parsed.outer.ipv4;
  if (ip.ttl == 0) return false;
  const std::size_t l3 = parsed.outer.l3_offset;
  frame[l3 + 8] = static_cast<std::uint8_t>(ip.ttl - 1);
  // TTL and protocol share a 16-bit checksum word: old = (ttl<<8)|proto.
  const std::uint16_t old_word =
      static_cast<std::uint16_t>((std::uint16_t{ip.ttl} << 8) | ip.protocol);
  const std::uint16_t new_word = static_cast<std::uint16_t>(
      (std::uint16_t{static_cast<std::uint8_t>(ip.ttl - 1)} << 8) |
      ip.protocol);
  const std::uint16_t patched =
      checksum_incremental_update(ip.checksum, old_word, new_word);
  write_be16(frame, l3 + 10, patched);
  return true;
}

}  // namespace flexsfp::net
