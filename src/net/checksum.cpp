#include "net/checksum.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace flexsfp::net {

std::uint32_t checksum_partial(BytesView data, std::uint32_t initial) {
  // Two of these run for every simulated packet (builder + validator), so
  // the sum is accumulated eight bytes per step in native byte order and
  // converted to big-endian word space only once at the end — RFC 1071 §2
  // (B): byte-swapping the folded sum equals summing swapped words. The
  // returned value stays a plain sum of big-endian 16-bit words, so chained
  // calls (pseudo-header + payload) and checksum_finish are unaffected.
  if constexpr (std::endian::native == std::endian::little) {
    const std::uint8_t* p = data.data();
    std::size_t n = data.size();
    std::uint64_t sum = 0;
    while (n >= 8) {
      std::uint32_t a = 0;
      std::uint32_t b = 0;
      std::memcpy(&a, p, 4);
      std::memcpy(&b, p + 4, 4);
      sum += std::uint64_t(a) + b;
      p += 8;
      n -= 8;
    }
    if (n >= 4) {
      std::uint32_t w = 0;
      std::memcpy(&w, p, 4);
      sum += w;
      p += 4;
      n -= 4;
    }
    if (n >= 2) {
      std::uint16_t w = 0;
      std::memcpy(&w, p, 2);
      sum += w;
      p += 2;
      n -= 2;
    }
    // A trailing odd byte is the high byte of a zero-padded big-endian
    // word, which reads back as just that byte in little-endian order.
    if (n != 0) sum += *p;
    while ((sum >> 16) != 0) sum = (sum & 0xffff) + (sum >> 16);
    const auto folded = static_cast<std::uint16_t>(sum);
    return initial +
           static_cast<std::uint32_t>(std::uint16_t((folded << 8) |
                                                    (folded >> 8)));
  } else {
    std::uint32_t sum = initial;
    std::size_t i = 0;
    for (; i + 1 < data.size(); i += 2) {
      sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
    }
    if (i < data.size()) {
      sum += static_cast<std::uint32_t>(data[i] << 8);  // pad odd byte
    }
    return sum;
  }
}

std::uint16_t checksum_finish(std::uint32_t partial) {
  while ((partial >> 16) != 0) {
    partial = (partial & 0xffff) + (partial >> 16);
  }
  return static_cast<std::uint16_t>(~partial & 0xffff);
}

std::uint16_t internet_checksum(BytesView data) {
  return checksum_finish(checksum_partial(data));
}

std::uint16_t checksum_incremental_update(std::uint16_t old_checksum,
                                          std::uint16_t old_word,
                                          std::uint16_t new_word) {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while ((sum >> 16) != 0) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t checksum_incremental_update32(std::uint16_t old_checksum,
                                            std::uint32_t old_value,
                                            std::uint32_t new_value) {
  std::uint16_t checksum = checksum_incremental_update(
      old_checksum, static_cast<std::uint16_t>(old_value >> 16),
      static_cast<std::uint16_t>(new_value >> 16));
  return checksum_incremental_update(
      checksum, static_cast<std::uint16_t>(old_value & 0xffff),
      static_cast<std::uint16_t>(new_value & 0xffff));
}

namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(BytesView data, std::uint32_t initial) {
  static const auto table = make_crc32_table();
  std::uint32_t c = initial;
  for (const auto byte : data) {
    c = table[(c ^ byte) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace flexsfp::net
