#include "net/packet_pool.hpp"

namespace flexsfp::net {

namespace detail {

void release_packet(Packet* packet) {
  PacketPoolCore* core = packet->pool_core_;
  if (core == nullptr) {
    delete packet;  // heap-fallback packet, never pooled
    return;
  }
  --core->outstanding;
  if (core->orphaned) {
    delete packet;
    if (core->outstanding == 0) delete core;
  } else {
    packet->reset_for_reuse();
    core->free_list.push_back(packet);
  }
}

}  // namespace detail

PacketPool::PacketPool(std::size_t capacity)
    : core_(new detail::PacketPoolCore) {
  core_->limit = capacity;
  core_->free_list.reserve(capacity);
}

PacketPool::~PacketPool() {
  for (Packet* packet : core_->free_list) delete packet;
  core_->pooled_total -= core_->free_list.size();
  core_->free_list.clear();
  core_->free_list.shrink_to_fit();
  if (core_->outstanding == 0) {
    delete core_;
  } else {
    // In-flight packets (e.g. delivered frames retained in results) still
    // point here; the last release frees the core.
    core_->orphaned = true;
  }
}

PacketPtr PacketPool::make() {
  Packet* packet = nullptr;
  if (!core_->free_list.empty()) {
    packet = core_->free_list.back();
    core_->free_list.pop_back();
    ++core_->reused;
  } else if (core_->pooled_total < core_->limit) {
    packet = new Packet();
    packet->pool_core_ = core_;
    ++core_->pooled_total;
    ++core_->fresh;
  } else {
    packet = new Packet();  // exhausted: plain heap, freed on release
    ++core_->heap_fallbacks;
  }
  ++core_->made;
  if (packet->pool_core_ != nullptr) {
    ++core_->outstanding;
    if (core_->outstanding > core_->high_watermark) {
      core_->high_watermark = core_->outstanding;
    }
  }
  packet->refs_ = 1;
  return PacketPtr::adopt(packet);
}

PacketPtr PacketPool::make(Bytes data) {
  PacketPtr packet = make();
  packet->data() = std::move(data);
  return packet;
}

PacketPtr PacketPool::clone(const Packet& src) {
  PacketPtr packet = make();
  *packet = src;  // bytes + metadata; intrusive bookkeeping stays the pool's
  return packet;
}

PacketPtr PacketPool::make_from(Packet frame) {
  PacketPtr packet = make();
  *packet = std::move(frame);
  return packet;
}

PacketPool::Stats PacketPool::stats() const {
  Stats stats;
  stats.made = core_->made;
  stats.reused = core_->reused;
  stats.fresh = core_->fresh;
  stats.heap_fallbacks = core_->heap_fallbacks;
  stats.in_use = core_->outstanding;
  stats.free_count = core_->free_list.size();
  stats.high_watermark = core_->high_watermark;
  stats.capacity = core_->limit;
  return stats;
}

PacketPool& PacketPool::local() {
  static thread_local PacketPool pool;
  return pool;
}

PacketPtr make_packet(Packet frame) {
  return PacketPool::local().make_from(std::move(frame));
}

PacketPtr make_packet(Bytes data) {
  return PacketPool::local().make(std::move(data));
}

}  // namespace flexsfp::net
