#include "net/addresses.hpp"

#include <charconv>
#include <cstdio>

namespace flexsfp::net {

namespace {

// Parse up to `max_digits` hex digits from `text` starting at `pos`.
// Returns nullopt if no digit is present.
std::optional<std::uint32_t> parse_hex_group(std::string_view text,
                                             std::size_t& pos,
                                             int max_digits) {
  std::uint32_t value = 0;
  int digits = 0;
  while (pos < text.size() && digits < max_digits) {
    const char c = text[pos];
    std::uint32_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      break;
    }
    value = (value << 4) | nibble;
    ++pos;
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  return value;
}

}  // namespace

MacAddress MacAddress::from_u64(std::uint64_t value) {
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    octets[i] = static_cast<std::uint8_t>(value >> (40 - 8 * i));
  }
  return MacAddress{octets};
}

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  std::array<std::uint8_t, 6> octets{};
  std::size_t pos = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (i != 0) {
      if (pos >= text.size() || text[pos] != ':') return std::nullopt;
      ++pos;
    }
    const auto group = parse_hex_group(text, pos, 2);
    if (!group) return std::nullopt;
    octets[i] = static_cast<std::uint8_t>(*group);
  }
  if (pos != text.size()) return std::nullopt;
  return MacAddress{octets};
}

std::uint64_t MacAddress::to_u64() const {
  std::uint64_t value = 0;
  for (const auto octet : octets_) value = (value << 8) | octet;
  return value;
}

bool MacAddress::is_broadcast() const { return *this == broadcast(); }

bool MacAddress::is_multicast() const { return (octets_[0] & 0x01) != 0; }

std::string MacAddress::to_string() const { return to_hex(octets_, ':'); }

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (i != 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    unsigned octet = 0;
    const auto* begin = text.data() + pos;
    const auto* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, octet);
    if (ec != std::errc{} || octet > 255 || ptr == begin) return std::nullopt;
    pos += static_cast<std::size_t>(ptr - begin);
    value = (value << 8) | octet;
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Address{value};
}

bool Ipv4Address::is_multicast() const { return (value_ >> 28) == 0xe; }

bool Ipv4Address::is_loopback() const { return (value_ >> 24) == 127; }

std::string Ipv4Address::to_string() const {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%u.%u.%u.%u", value_ >> 24,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buffer;
}

Ipv6Address Ipv6Address::from_u64_pair(std::uint64_t hi, std::uint64_t lo) {
  std::array<std::uint8_t, 16> octets{};
  for (std::size_t i = 0; i < 8; ++i) {
    octets[i] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
    octets[8 + i] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
  }
  return Ipv6Address{octets};
}

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  // Split on "::" if present; each side is a list of 16-bit groups.
  std::array<std::uint16_t, 8> groups{};
  std::size_t head_count = 0;
  std::size_t tail_count = 0;
  std::array<std::uint16_t, 8> tail{};

  const auto gap = text.find("::");
  const std::string_view head =
      gap == std::string_view::npos ? text : text.substr(0, gap);
  const std::string_view rest =
      gap == std::string_view::npos ? std::string_view{} : text.substr(gap + 2);

  auto parse_side = [](std::string_view side, std::array<std::uint16_t, 8>& out,
                       std::size_t& count) -> bool {
    if (side.empty()) return true;
    std::size_t pos = 0;
    while (true) {
      if (count == 8) return false;
      const auto group = parse_hex_group(side, pos, 4);
      if (!group) return false;
      out[count++] = static_cast<std::uint16_t>(*group);
      if (pos == side.size()) return true;
      if (side[pos] != ':') return false;
      ++pos;
    }
  };

  if (!parse_side(head, groups, head_count)) return std::nullopt;
  if (!parse_side(rest, tail, tail_count)) return std::nullopt;
  if (gap == std::string_view::npos) {
    if (head_count != 8) return std::nullopt;
  } else {
    if (head_count + tail_count > 7) return std::nullopt;  // "::" covers >= 1
    for (std::size_t i = 0; i < tail_count; ++i) {
      groups[8 - tail_count + i] = tail[i];
    }
  }

  std::array<std::uint8_t, 16> octets{};
  for (std::size_t i = 0; i < 8; ++i) {
    octets[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    octets[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xff);
  }
  return Ipv6Address{octets};
}

std::pair<std::uint64_t, std::uint64_t> Ipv6Address::to_u64_pair() const {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (std::size_t i = 0; i < 8; ++i) hi = (hi << 8) | octets_[i];
  for (std::size_t i = 8; i < 16; ++i) lo = (lo << 8) | octets_[i];
  return {hi, lo};
}

bool Ipv6Address::is_multicast() const { return octets_[0] == 0xff; }

std::string Ipv6Address::to_string() const {
  // Always the full (uncompressed) form: unambiguous and cheap.
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(39);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i != 0) out += ':';
    const std::uint16_t group = static_cast<std::uint16_t>(
        (octets_[2 * i] << 8) | octets_[2 * i + 1]);
    out += digits[(group >> 12) & 0xf];
    out += digits[(group >> 8) & 0xf];
    out += digits[(group >> 4) & 0xf];
    out += digits[group & 0xf];
  }
  return out;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address address, std::uint8_t length)
    : length_(length) {
  const std::uint32_t m =
      length == 0 ? 0 : (length >= 32 ? 0xffffffffu
                                      : ~((1u << (32 - length)) - 1));
  address_ = Ipv4Address{address.value() & m};
  if (length > 32) length_ = 32;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned length = 0;
  const auto* begin = text.data() + slash + 1;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, length);
  if (ec != std::errc{} || ptr != end || length > 32) return std::nullopt;
  return Ipv4Prefix{*addr, static_cast<std::uint8_t>(length)};
}

std::uint32_t Ipv4Prefix::mask() const {
  return length_ == 0 ? 0
                      : (length_ >= 32 ? 0xffffffffu
                                       : ~((1u << (32 - length_)) - 1));
}

bool Ipv4Prefix::contains(Ipv4Address addr) const {
  return (addr.value() & mask()) == address_.value();
}

std::string Ipv4Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

namespace {

// 128-bit mask as a (hi, lo) pair for `length` leading ones.
std::pair<std::uint64_t, std::uint64_t> ipv6_mask(std::uint8_t length) {
  const auto ones = [](unsigned n) -> std::uint64_t {
    return n == 0 ? 0 : (n >= 64 ? ~0ull : ~((1ull << (64 - n)) - 1));
  };
  if (length <= 64) return {ones(length), 0};
  return {~0ull, ones(length - 64)};
}

}  // namespace

Ipv6Prefix::Ipv6Prefix(const Ipv6Address& address, std::uint8_t length)
    : length_(length > 128 ? 128 : length) {
  const auto [mask_hi, mask_lo] = ipv6_mask(length_);
  const auto [hi, lo] = address.to_u64_pair();
  address_ = Ipv6Address::from_u64_pair(hi & mask_hi, lo & mask_lo);
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv6Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned length = 0;
  const auto* begin = text.data() + slash + 1;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, length);
  if (ec != std::errc{} || ptr != end || length > 128) return std::nullopt;
  return Ipv6Prefix{*addr, static_cast<std::uint8_t>(length)};
}

bool Ipv6Prefix::contains(const Ipv6Address& addr) const {
  const auto [mask_hi, mask_lo] = ipv6_mask(length_);
  const auto [hi, lo] = addr.to_u64_pair();
  const auto [prefix_hi, prefix_lo] = address_.to_u64_pair();
  return (hi & mask_hi) == prefix_hi && (lo & mask_lo) == prefix_lo;
}

std::string Ipv6Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace flexsfp::net
