// Link-layer and network-layer address value types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/bytes.hpp"

namespace flexsfp::net {

/// 48-bit IEEE 802 MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Build from the low 48 bits of `value` (useful for generated hosts).
  [[nodiscard]] static MacAddress from_u64(std::uint64_t value);
  /// Parse "aa:bb:cc:dd:ee:ff"; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text);
  [[nodiscard]] static constexpr MacAddress broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }
  [[nodiscard]] std::uint64_t to_u64() const;
  [[nodiscard]] bool is_broadcast() const;
  [[nodiscard]] bool is_multicast() const;
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address held in host order for arithmetic convenience.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t host_order)
      : value_(host_order) {}

  [[nodiscard]] static constexpr Ipv4Address from_octets(std::uint8_t a,
                                                         std::uint8_t b,
                                                         std::uint8_t c,
                                                         std::uint8_t d) {
    return Ipv4Address{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }
  /// Parse dotted quad; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] bool is_multicast() const;  // 224.0.0.0/4
  [[nodiscard]] bool is_loopback() const;   // 127.0.0.0/8
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Address&,
                                    const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// IPv6 address as 16 raw octets.
class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  explicit constexpr Ipv6Address(std::array<std::uint8_t, 16> octets)
      : octets_(octets) {}

  /// Build from two 64-bit halves (hi = first 8 octets on the wire).
  [[nodiscard]] static Ipv6Address from_u64_pair(std::uint64_t hi,
                                                 std::uint64_t lo);
  /// Parse full or "::"-compressed textual form; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv6Address> parse(std::string_view text);

  [[nodiscard]] constexpr const std::array<std::uint8_t, 16>& octets() const {
    return octets_;
  }
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> to_u64_pair() const;
  [[nodiscard]] bool is_multicast() const;  // ff00::/8
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Address&,
                                    const Ipv6Address&) = default;

 private:
  std::array<std::uint8_t, 16> octets_{};
};

/// IPv4 prefix (address + mask length) used by LPM tables and ACLs.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  /// Precondition: length <= 32. The address is canonicalized (host bits
  /// cleared) so equal prefixes compare equal.
  Ipv4Prefix(Ipv4Address address, std::uint8_t length);

  /// Parse "a.b.c.d/len"; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Address address() const { return address_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }
  [[nodiscard]] std::uint32_t mask() const;
  [[nodiscard]] bool contains(Ipv4Address addr) const;
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&,
                                    const Ipv4Prefix&) = default;

 private:
  Ipv4Address address_{};
  std::uint8_t length_ = 0;
};

/// IPv6 prefix (address + mask length), for subscriber-side IPv6 policy.
class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() = default;
  /// Canonicalizes host bits to zero; length is clamped to 128.
  Ipv6Prefix(const Ipv6Address& address, std::uint8_t length);

  /// Parse "2001:db8::/32"; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv6Prefix> parse(std::string_view text);

  [[nodiscard]] const Ipv6Address& address() const { return address_; }
  [[nodiscard]] std::uint8_t length() const { return length_; }
  [[nodiscard]] bool contains(const Ipv6Address& addr) const;
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Prefix&,
                                    const Ipv6Prefix&) = default;

 private:
  Ipv6Address address_{};
  std::uint8_t length_ = 0;
};

}  // namespace flexsfp::net
