// Wire-format protocol headers.
//
// Each header type is a plain value struct with
//   * static constexpr min_size / size()  — bytes on the wire,
//   * static parse(view, offset)          — returns nullopt when truncated or
//                                           structurally invalid,
//   * serialize_to(span, offset)          — writes exactly size() bytes.
// Parsing never reads past the view; serialization throws std::out_of_range
// when the destination is too small (via the bytes.hpp helpers).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/addresses.hpp"
#include "net/bytes.hpp"

namespace flexsfp::net {

/// EtherType values used across the library (host order).
enum class EtherType : std::uint16_t {
  ipv4 = 0x0800,
  arp = 0x0806,
  vlan = 0x8100,       // 802.1Q
  qinq = 0x88a8,       // 802.1ad service tag
  ipv6 = 0x86dd,
  flexsfp_mgmt = 0x88b7,  // local-experimental: FlexSFP management protocol
};

/// IP protocol numbers.
enum class IpProto : std::uint8_t {
  icmp = 1,
  tcp = 6,
  udp = 17,
  gre = 47,
  icmpv6 = 58,
  ipv4_encap = 4,   // IP-in-IP
  ipv6_encap = 41,
};

[[nodiscard]] std::string to_string(EtherType type);
[[nodiscard]] std::string to_string(IpProto proto);

struct EthernetHeader {
  static constexpr std::size_t size() { return 14; }

  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;

  [[nodiscard]] static std::optional<EthernetHeader> parse(BytesView data,
                                                           std::size_t offset);
  void serialize_to(BytesSpan data, std::size_t offset) const;
};

/// A single 802.1Q/802.1ad tag (the 4 bytes after the TPID has been consumed
/// as the outer ether_type).
struct VlanTag {
  static constexpr std::size_t size() { return 4; }

  std::uint8_t pcp = 0;   // priority code point, 3 bits
  bool dei = false;       // drop eligible indicator
  std::uint16_t vid = 0;  // VLAN id, 12 bits
  std::uint16_t ether_type = 0;  // inner ether type

  [[nodiscard]] static std::optional<VlanTag> parse(BytesView data,
                                                    std::size_t offset);
  void serialize_to(BytesSpan data, std::size_t offset) const;
};

struct Ipv4Header {
  static constexpr std::size_t min_size() { return 20; }

  std::uint8_t ihl = 5;  // header length in 32-bit words (5..15)
  std::uint8_t dscp = 0;
  std::uint8_t ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;

  [[nodiscard]] std::size_t size() const { return std::size_t{ihl} * 4; }
  [[nodiscard]] static std::optional<Ipv4Header> parse(BytesView data,
                                                       std::size_t offset);
  /// Serializes the fixed header; option bytes (ihl > 5) are zero-filled.
  void serialize_to(BytesSpan data, std::size_t offset) const;
  /// Checksum over the serialized header with the checksum field zeroed.
  [[nodiscard]] std::uint16_t compute_checksum() const;
};

struct Ipv6Header {
  static constexpr std::size_t size() { return 40; }

  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Address src;
  Ipv6Address dst;

  [[nodiscard]] static std::optional<Ipv6Header> parse(BytesView data,
                                                       std::size_t offset);
  void serialize_to(BytesSpan data, std::size_t offset) const;
};

struct UdpHeader {
  static constexpr std::size_t size() { return 8; }

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;

  [[nodiscard]] static std::optional<UdpHeader> parse(BytesView data,
                                                      std::size_t offset);
  void serialize_to(BytesSpan data, std::size_t offset) const;
};

struct TcpHeader {
  static constexpr std::size_t min_size() { return 20; }

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // header length in 32-bit words (5..15)
  std::uint8_t flags = 0;        // CWR..FIN bit field
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent_pointer = 0;

  static constexpr std::uint8_t flag_fin = 0x01;
  static constexpr std::uint8_t flag_syn = 0x02;
  static constexpr std::uint8_t flag_rst = 0x04;
  static constexpr std::uint8_t flag_psh = 0x08;
  static constexpr std::uint8_t flag_ack = 0x10;

  [[nodiscard]] std::size_t size() const {
    return std::size_t{data_offset} * 4;
  }
  [[nodiscard]] static std::optional<TcpHeader> parse(BytesView data,
                                                      std::size_t offset);
  /// Option bytes beyond the fixed 20 are zero-filled.
  void serialize_to(BytesSpan data, std::size_t offset) const;
};

struct IcmpHeader {
  static constexpr std::size_t size() { return 8; }

  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint32_t rest = 0;  // id/seq or unused, type dependent

  [[nodiscard]] static std::optional<IcmpHeader> parse(BytesView data,
                                                       std::size_t offset);
  void serialize_to(BytesSpan data, std::size_t offset) const;
};

/// Minimal GRE header (RFC 2784, no optional fields).
struct GreHeader {
  static constexpr std::size_t size() { return 4; }

  std::uint16_t protocol = 0;  // EtherType of the payload

  [[nodiscard]] static std::optional<GreHeader> parse(BytesView data,
                                                      std::size_t offset);
  void serialize_to(BytesSpan data, std::size_t offset) const;
};

/// VXLAN header (RFC 7348), carried over UDP dst port 4789.
struct VxlanHeader {
  static constexpr std::size_t size() { return 8; }
  static constexpr std::uint16_t udp_port = 4789;

  std::uint32_t vni = 0;  // 24 bits

  [[nodiscard]] static std::optional<VxlanHeader> parse(BytesView data,
                                                        std::size_t offset);
  void serialize_to(BytesSpan data, std::size_t offset) const;
};

}  // namespace flexsfp::net
