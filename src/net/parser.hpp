// Header-stack parser: turns raw frame bytes into typed header values plus
// the byte offsets needed for in-place edits. This mirrors what the parse
// graph of an RMT-style Packet Processing Engine extracts into the per-packet
// header vector.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/flow.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"

namespace flexsfp::net {

enum class ParseError : std::uint8_t {
  none = 0,
  truncated_ethernet,
  truncated_vlan,
  too_many_vlan_tags,
  bad_ip_version,
  truncated_ipv4,
  truncated_ipv6,
  truncated_l4,
  bad_gre,
  bad_vxlan,
};

[[nodiscard]] std::string to_string(ParseError error);

/// Result of parsing one encapsulation layer of IP + L4.
struct IpLayer {
  std::optional<Ipv4Header> ipv4;
  std::optional<Ipv6Header> ipv6;
  std::size_t l3_offset = 0;

  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<IcmpHeader> icmp;
  std::size_t l4_offset = 0;

  /// Offset of the first byte after the parsed L4 header (payload).
  std::size_t payload_offset = 0;

  [[nodiscard]] bool has_ip() const {
    return ipv4.has_value() || ipv6.has_value();
  }
  /// IPv4 5-tuple for this layer; nullopt for non-IPv4 traffic.
  [[nodiscard]] std::optional<FiveTuple> five_tuple() const;
};

/// Fully parsed view of a frame. Offsets index into the original buffer so
/// applications can rewrite fields in place.
struct ParsedPacket {
  ParseError error = ParseError::none;

  EthernetHeader eth;
  std::vector<VlanTag> vlan_tags;  // outermost first; at most 2 (QinQ)
  std::uint16_t effective_ether_type = 0;  // after VLAN tags

  IpLayer outer;

  // Tunnel payloads, when recognized and inner parsing is enabled.
  std::optional<GreHeader> gre;
  std::optional<VxlanHeader> vxlan;
  std::optional<EthernetHeader> inner_eth;  // VXLAN carries full frames
  std::optional<IpLayer> inner;

  [[nodiscard]] bool ok() const { return error == ParseError::none; }
  [[nodiscard]] bool is_ipv4() const { return outer.ipv4.has_value(); }
  [[nodiscard]] bool is_ipv6() const { return outer.ipv6.has_value(); }
  /// Outer-layer IPv4 5-tuple (the key most apps match on).
  [[nodiscard]] std::optional<FiveTuple> five_tuple() const {
    return outer.five_tuple();
  }
};

struct ParserOptions {
  /// Parse into recognized GRE/VXLAN tunnels (one level).
  bool parse_tunnels = true;
  /// Maximum number of stacked VLAN tags accepted.
  std::size_t max_vlan_tags = 2;
};

/// Parse an Ethernet frame. On error the returned ParsedPacket carries the
/// error code and every header successfully parsed before the failure —
/// exactly what a hardware parser hands to the deparser for a reject path.
[[nodiscard]] ParsedPacket parse_packet(BytesView data,
                                        const ParserOptions& options = {});
[[nodiscard]] inline ParsedPacket parse_packet(
    const Packet& packet, const ParserOptions& options = {}) {
  return parse_packet(packet.data(), options);
}

/// Structural validation issues beyond parseability — what the sanitizer app
/// screens for (§3 "packet sanitization and protocol validation").
enum class ValidationIssue : std::uint8_t {
  ipv4_bad_checksum,
  ipv4_total_length_mismatch,
  ipv4_ttl_zero,
  ipv4_fragment,          // fragments often blocked at hardened edges
  ipv4_options_present,   // deprecated/rarely legitimate
  ipv4_martian_source,    // loopback/multicast source address
  ipv6_payload_length_mismatch,
  ipv6_hop_limit_zero,
  tcp_bad_flags,          // e.g. SYN+FIN, null scan
  udp_length_mismatch,
  frame_undersized,       // < 60 bytes before FCS
};

[[nodiscard]] std::string to_string(ValidationIssue issue);

/// Run all structural checks; returns every issue found (empty = clean).
[[nodiscard]] std::vector<ValidationIssue> validate_packet(
    const ParsedPacket& parsed, BytesView data);

}  // namespace flexsfp::net
