// Fixed-capacity packet buffer pool: the allocation-free half of the hot
// path (the other half is sim::EventQueue).
//
// The paper's cheap-path argument is that per-packet work is bounded and
// allocation-free; the simulator has to match or its throughput is bounded
// by malloc instead of the modeled 156.25 MHz × 64-bit budget. A PacketPool
// keeps released Packet objects — payload capacity included — on a
// free list, so steady-state traffic generation, cloning and delivery touch
// the allocator zero times per packet. Each Simulation owns one pool (so a
// sharded run has exactly one pool per shard and never frees across
// shards); bare make_packet() calls fall back to a thread-local pool.
//
// Lifetime rule: packets may outlive their pool (results hold delivered
// frames after the shard's Simulation is gone). The pool therefore keeps
// its state in a heap-allocated core; destroying the pool drains the free
// list and orphans the core, and the last outstanding packet release frees
// it. Everything is single-threaded by the shard ownership contract — the
// only cross-thread handoff is the parallel testbed's join barrier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace flexsfp::net {

namespace detail {
struct PacketPoolCore {
  /// Recycled packets ready to serve. reserve(limit)'d at construction, and
  /// only pooled packets (at most `limit`) ever enter, so pushes here never
  /// reallocate — releasing a packet is allocation-free too.
  std::vector<Packet*> free_list;
  std::size_t outstanding = 0;   // pooled packets currently referenced
  std::size_t pooled_total = 0;  // pooled packets in existence
  std::size_t limit = 0;         // max pooled packets; beyond = heap
  bool orphaned = false;         // pool destroyed, core self-frees
  // Tallies surfaced as pool.* registry series.
  std::uint64_t made = 0;
  std::uint64_t reused = 0;
  std::uint64_t fresh = 0;
  std::uint64_t heap_fallbacks = 0;
  std::size_t high_watermark = 0;
};
}  // namespace detail

class PacketPool {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Point-in-time view of the pool's accounting.
  struct Stats {
    std::uint64_t made = 0;            // every allocation served
    std::uint64_t reused = 0;          // served from the free list
    std::uint64_t fresh = 0;           // first-time pooled constructions
    std::uint64_t heap_fallbacks = 0;  // pool exhausted, plain heap packet
    std::size_t in_use = 0;            // pooled packets currently referenced
    std::size_t free_count = 0;        // recycled packets ready to serve
    std::size_t high_watermark = 0;    // max in_use ever
    std::size_t capacity = 0;
  };

  explicit PacketPool(std::size_t capacity = kDefaultCapacity);
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// A recycled (or fresh) packet with empty payload and zeroed metadata.
  /// Never fails: past `capacity` pooled packets it serves plain heap
  /// packets and counts the fallback.
  [[nodiscard]] PacketPtr make();
  /// make() with the payload moved in.
  [[nodiscard]] PacketPtr make(Bytes data);
  /// make() carrying a copy of `src`'s bytes and metadata (duplication,
  /// mirror-to-control, broadcast). Reuses the recycled payload capacity.
  [[nodiscard]] PacketPtr clone(const Packet& src);
  /// Move a value-built frame (e.g. make_mgmt_frame's result) into a pooled
  /// packet.
  [[nodiscard]] PacketPtr make_from(Packet frame);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t capacity() const { return core_->limit; }

  /// The calling thread's fallback pool, used by bare make_packet().
  [[nodiscard]] static PacketPool& local();

 private:
  detail::PacketPoolCore* core_;
};

}  // namespace flexsfp::net
