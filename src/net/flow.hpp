// Flow identity and the hash functions a hardware datapath would implement.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "net/addresses.hpp"

namespace flexsfp::net {

/// Classic 5-tuple flow key (IPv4). Ports are zero for protocols without
/// them (e.g. ICMP).
struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend constexpr auto operator<=>(const FiveTuple&,
                                    const FiveTuple&) = default;

  [[nodiscard]] std::string to_string() const;
  /// The same flow with src/dst swapped (reverse direction).
  [[nodiscard]] FiveTuple reversed() const;
  /// Canonical key equal for both directions of a flow, for bidirectional
  /// state tables.
  [[nodiscard]] FiveTuple canonical() const;
};

/// FNV-1a: the cheapest hash; one multiply per byte, maps to a tiny
/// LUT budget, used where quality requirements are modest.
[[nodiscard]] std::uint64_t fnv1a(BytesView data);
[[nodiscard]] std::uint64_t fnv1a_u64(std::uint64_t value);

/// MurmurHash3 x64 finalizer-based 64-bit hash; good avalanche at a cost a
/// small FPGA pipeline can still afford. Used by exact-match tables.
[[nodiscard]] std::uint64_t murmur3_64(BytesView data,
                                       std::uint64_t seed = 0);

/// Toeplitz hash (the RSS hash NICs implement in silicon); symmetric when
/// used with a symmetric key. Used by the load-balancer app so both
/// directions of a flow pick the same uplink.
class ToeplitzHash {
 public:
  /// `key` must be at least input length + 4 bytes; the standard Microsoft
  /// RSS key length of 40 bytes covers IPv4 5-tuples.
  explicit ToeplitzHash(Bytes key);
  /// The conventional symmetric key (repeated 0x6d5a pattern).
  [[nodiscard]] static ToeplitzHash symmetric();

  [[nodiscard]] std::uint32_t operator()(BytesView input) const;
  [[nodiscard]] std::uint32_t hash_tuple(const FiveTuple& t) const;

 private:
  Bytes key_;
};

/// Hash a 5-tuple with murmur3 (table insertion key).
[[nodiscard]] std::uint64_t hash_tuple(const FiveTuple& t,
                                       std::uint64_t seed = 0);

}  // namespace flexsfp::net
