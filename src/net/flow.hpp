// Flow identity and the hash functions a hardware datapath would implement.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "net/addresses.hpp"

namespace flexsfp::net {

/// Classic 5-tuple flow key (IPv4). Ports are zero for protocols without
/// them (e.g. ICMP).
struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend constexpr auto operator<=>(const FiveTuple&,
                                    const FiveTuple&) = default;

  [[nodiscard]] std::string to_string() const;
  /// The same flow with src/dst swapped (reverse direction).
  [[nodiscard]] FiveTuple reversed() const;
  /// Canonical key equal for both directions of a flow, for bidirectional
  /// state tables.
  [[nodiscard]] FiveTuple canonical() const;
};

/// FNV-1a: the cheapest hash; one multiply per byte, maps to a tiny
/// LUT budget, used where quality requirements are modest. Inline: the
/// u64 form runs per packet in table lookups and sampling decisions.
[[nodiscard]] inline std::uint64_t fnv1a(BytesView data) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const auto byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}
[[nodiscard]] inline std::uint64_t fnv1a_u64(std::uint64_t value) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= static_cast<std::uint8_t>(value >> (8 * i));
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace detail {
[[nodiscard]] inline std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}
}  // namespace detail

/// MurmurHash3 x64 finalizer-based 64-bit hash; good avalanche at a cost a
/// small FPGA pipeline can still afford. Used by exact-match tables (one
/// hash per table probe on the per-packet path, hence inline).
///
/// A streamlined variant of MurmurHash3 x64: 8-byte blocks mixed with the
/// x64 finalizer. Chosen for avalanche quality, not wire compatibility.
[[nodiscard]] inline std::uint64_t murmur3_64(BytesView data,
                                              std::uint64_t seed = 0) {
  std::uint64_t hash = seed ^ (data.size() * 0x87c37b91114253d5ull);
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    std::uint64_t block = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      block |= std::uint64_t{data[i + j]} << (8 * j);
    }
    hash = detail::fmix64(hash ^ block) * 0x5bd1e9955bd1e995ull;
  }
  std::uint64_t tail = 0;
  for (std::size_t j = 0; i + j < data.size(); ++j) {
    tail |= std::uint64_t{data[i + j]} << (8 * j);
  }
  return detail::fmix64(hash ^ tail);
}

/// murmur3_64 specialized to one 8-byte little-endian block: computes
/// exactly murmur3_64(BytesView{&value, 8}, seed) — the byte-assembly loops
/// there reconstruct `value` verbatim — without the span walk. Exact-match
/// tables hash a fixed u64 key once per probe, so this runs per packet.
[[nodiscard]] inline std::uint64_t murmur3_u64(std::uint64_t value,
                                               std::uint64_t seed = 0) {
  const std::uint64_t hash = seed ^ (8 * 0x87c37b91114253d5ull);
  return detail::fmix64(detail::fmix64(hash ^ value) * 0x5bd1e9955bd1e995ull);
}

/// Toeplitz hash (the RSS hash NICs implement in silicon); symmetric when
/// used with a symmetric key. Used by the load-balancer app so both
/// directions of a flow pick the same uplink.
class ToeplitzHash {
 public:
  /// `key` must be at least input length + 4 bytes; the standard Microsoft
  /// RSS key length of 40 bytes covers IPv4 5-tuples.
  explicit ToeplitzHash(Bytes key);
  /// The conventional symmetric key (repeated 0x6d5a pattern).
  [[nodiscard]] static ToeplitzHash symmetric();

  [[nodiscard]] std::uint32_t operator()(BytesView input) const;
  [[nodiscard]] std::uint32_t hash_tuple(const FiveTuple& t) const;

 private:
  Bytes key_;
};

/// Hash a 5-tuple with murmur3 (table insertion key).
[[nodiscard]] std::uint64_t hash_tuple(const FiveTuple& t,
                                       std::uint64_t seed = 0);

}  // namespace flexsfp::net
