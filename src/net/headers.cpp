#include "net/headers.hpp"

#include <array>
#include <stdexcept>

#include "net/checksum.hpp"

namespace flexsfp::net {

std::string to_string(EtherType type) {
  switch (type) {
    case EtherType::ipv4: return "IPv4";
    case EtherType::arp: return "ARP";
    case EtherType::vlan: return "VLAN";
    case EtherType::qinq: return "QinQ";
    case EtherType::ipv6: return "IPv6";
    case EtherType::flexsfp_mgmt: return "FlexSFP-Mgmt";
  }
  return "EtherType(0x" +
         to_hex(std::array<std::uint8_t, 2>{
             static_cast<std::uint8_t>(static_cast<std::uint16_t>(type) >> 8),
             static_cast<std::uint8_t>(static_cast<std::uint16_t>(type))}) +
         ")";
}

std::string to_string(IpProto proto) {
  switch (proto) {
    case IpProto::icmp: return "ICMP";
    case IpProto::tcp: return "TCP";
    case IpProto::udp: return "UDP";
    case IpProto::gre: return "GRE";
    case IpProto::icmpv6: return "ICMPv6";
    case IpProto::ipv4_encap: return "IP-in-IP";
    case IpProto::ipv6_encap: return "IPv6-in-IP";
  }
  return "IpProto(" + std::to_string(static_cast<int>(proto)) + ")";
}

std::optional<EthernetHeader> EthernetHeader::parse(BytesView data,
                                                    std::size_t offset) {
  if (offset + size() > data.size()) return std::nullopt;
  EthernetHeader h;
  std::array<std::uint8_t, 6> mac{};
  for (std::size_t i = 0; i < 6; ++i) mac[i] = data[offset + i];
  h.dst = MacAddress{mac};
  for (std::size_t i = 0; i < 6; ++i) mac[i] = data[offset + 6 + i];
  h.src = MacAddress{mac};
  h.ether_type = read_be16(data, offset + 12);
  return h;
}

void EthernetHeader::serialize_to(BytesSpan data, std::size_t offset) const {
  if (offset + size() > data.size()) {
    throw std::out_of_range("EthernetHeader::serialize_to");
  }
  for (std::size_t i = 0; i < 6; ++i) data[offset + i] = dst.octets()[i];
  for (std::size_t i = 0; i < 6; ++i) data[offset + 6 + i] = src.octets()[i];
  write_be16(data, offset + 12, ether_type);
}

std::optional<VlanTag> VlanTag::parse(BytesView data, std::size_t offset) {
  if (offset + size() > data.size()) return std::nullopt;
  const std::uint16_t tci = read_be16(data, offset);
  VlanTag tag;
  tag.pcp = static_cast<std::uint8_t>(tci >> 13);
  tag.dei = ((tci >> 12) & 1) != 0;
  tag.vid = static_cast<std::uint16_t>(tci & 0x0fff);
  tag.ether_type = read_be16(data, offset + 2);
  return tag;
}

void VlanTag::serialize_to(BytesSpan data, std::size_t offset) const {
  const std::uint16_t tci = static_cast<std::uint16_t>(
      (std::uint16_t{pcp} << 13) | ((dei ? 1u : 0u) << 12) |
      (vid & 0x0fff));
  write_be16(data, offset, tci);
  write_be16(data, offset + 2, ether_type);
}

std::optional<Ipv4Header> Ipv4Header::parse(BytesView data,
                                            std::size_t offset) {
  if (offset + min_size() > data.size()) return std::nullopt;
  const std::uint8_t version_ihl = data[offset];
  if ((version_ihl >> 4) != 4) return std::nullopt;
  Ipv4Header h;
  h.ihl = static_cast<std::uint8_t>(version_ihl & 0x0f);
  if (h.ihl < 5 || offset + h.size() > data.size()) return std::nullopt;
  const std::uint8_t tos = data[offset + 1];
  h.dscp = static_cast<std::uint8_t>(tos >> 2);
  h.ecn = static_cast<std::uint8_t>(tos & 0x03);
  h.total_length = read_be16(data, offset + 2);
  h.identification = read_be16(data, offset + 4);
  const std::uint16_t flags_frag = read_be16(data, offset + 6);
  h.dont_fragment = (flags_frag & 0x4000) != 0;
  h.more_fragments = (flags_frag & 0x2000) != 0;
  h.fragment_offset = static_cast<std::uint16_t>(flags_frag & 0x1fff);
  h.ttl = data[offset + 8];
  h.protocol = data[offset + 9];
  h.checksum = read_be16(data, offset + 10);
  h.src = Ipv4Address{read_be32(data, offset + 12)};
  h.dst = Ipv4Address{read_be32(data, offset + 16)};
  return h;
}

void Ipv4Header::serialize_to(BytesSpan data, std::size_t offset) const {
  if (offset + size() > data.size()) {
    throw std::out_of_range("Ipv4Header::serialize_to");
  }
  data[offset] = static_cast<std::uint8_t>((4 << 4) | (ihl & 0x0f));
  data[offset + 1] = static_cast<std::uint8_t>((dscp << 2) | (ecn & 0x03));
  write_be16(data, offset + 2, total_length);
  write_be16(data, offset + 4, identification);
  const std::uint16_t flags_frag = static_cast<std::uint16_t>(
      (dont_fragment ? 0x4000 : 0) | (more_fragments ? 0x2000 : 0) |
      (fragment_offset & 0x1fff));
  write_be16(data, offset + 6, flags_frag);
  data[offset + 8] = ttl;
  data[offset + 9] = protocol;
  write_be16(data, offset + 10, checksum);
  write_be32(data, offset + 12, src.value());
  write_be32(data, offset + 16, dst.value());
  for (std::size_t i = min_size(); i < size(); ++i) data[offset + i] = 0;
}

std::uint16_t Ipv4Header::compute_checksum() const {
  // Field-wise ones'-complement sum over the header's big-endian 16-bit
  // words with the checksum field taken as zero — exactly what serializing
  // to scratch (checksum zeroed, options bytes zero) and running
  // internet_checksum produces, minus the copy. This runs once per built
  // packet and must not allocate.
  std::uint32_t sum = 0;
  sum += static_cast<std::uint32_t>(
      ((4u << 4) | (ihl & 0x0f)) << 8 | ((dscp << 2) | (ecn & 0x03)));
  sum += total_length;
  sum += identification;
  sum += static_cast<std::uint32_t>((dont_fragment ? 0x4000 : 0) |
                                    (more_fragments ? 0x2000 : 0) |
                                    (fragment_offset & 0x1fff));
  sum += static_cast<std::uint32_t>((std::uint32_t{ttl} << 8) | protocol);
  sum += src.value() >> 16;
  sum += src.value() & 0xffff;
  sum += dst.value() >> 16;
  sum += dst.value() & 0xffff;
  return checksum_finish(sum);
}

std::optional<Ipv6Header> Ipv6Header::parse(BytesView data,
                                            std::size_t offset) {
  if (offset + size() > data.size()) return std::nullopt;
  const std::uint32_t word0 = read_be32(data, offset);
  if ((word0 >> 28) != 6) return std::nullopt;
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>((word0 >> 20) & 0xff);
  h.flow_label = word0 & 0xfffff;
  h.payload_length = read_be16(data, offset + 4);
  h.next_header = data[offset + 6];
  h.hop_limit = data[offset + 7];
  std::array<std::uint8_t, 16> addr{};
  for (std::size_t i = 0; i < 16; ++i) addr[i] = data[offset + 8 + i];
  h.src = Ipv6Address{addr};
  for (std::size_t i = 0; i < 16; ++i) addr[i] = data[offset + 24 + i];
  h.dst = Ipv6Address{addr};
  return h;
}

void Ipv6Header::serialize_to(BytesSpan data, std::size_t offset) const {
  if (offset + size() > data.size()) {
    throw std::out_of_range("Ipv6Header::serialize_to");
  }
  const std::uint32_t word0 = (std::uint32_t{6} << 28) |
                              (std::uint32_t{traffic_class} << 20) |
                              (flow_label & 0xfffff);
  write_be32(data, offset, word0);
  write_be16(data, offset + 4, payload_length);
  data[offset + 6] = next_header;
  data[offset + 7] = hop_limit;
  for (std::size_t i = 0; i < 16; ++i) data[offset + 8 + i] = src.octets()[i];
  for (std::size_t i = 0; i < 16; ++i) data[offset + 24 + i] = dst.octets()[i];
}

std::optional<UdpHeader> UdpHeader::parse(BytesView data, std::size_t offset) {
  if (offset + size() > data.size()) return std::nullopt;
  UdpHeader h;
  h.src_port = read_be16(data, offset);
  h.dst_port = read_be16(data, offset + 2);
  h.length = read_be16(data, offset + 4);
  h.checksum = read_be16(data, offset + 6);
  return h;
}

void UdpHeader::serialize_to(BytesSpan data, std::size_t offset) const {
  write_be16(data, offset, src_port);
  write_be16(data, offset + 2, dst_port);
  write_be16(data, offset + 4, length);
  write_be16(data, offset + 6, checksum);
}

std::optional<TcpHeader> TcpHeader::parse(BytesView data, std::size_t offset) {
  if (offset + min_size() > data.size()) return std::nullopt;
  TcpHeader h;
  h.src_port = read_be16(data, offset);
  h.dst_port = read_be16(data, offset + 2);
  h.seq = read_be32(data, offset + 4);
  h.ack = read_be32(data, offset + 8);
  h.data_offset = static_cast<std::uint8_t>(data[offset + 12] >> 4);
  if (h.data_offset < 5 || offset + h.size() > data.size()) {
    return std::nullopt;
  }
  h.flags = data[offset + 13];
  h.window = read_be16(data, offset + 14);
  h.checksum = read_be16(data, offset + 16);
  h.urgent_pointer = read_be16(data, offset + 18);
  return h;
}

void TcpHeader::serialize_to(BytesSpan data, std::size_t offset) const {
  if (offset + size() > data.size()) {
    throw std::out_of_range("TcpHeader::serialize_to");
  }
  write_be16(data, offset, src_port);
  write_be16(data, offset + 2, dst_port);
  write_be32(data, offset + 4, seq);
  write_be32(data, offset + 8, ack);
  data[offset + 12] = static_cast<std::uint8_t>(data_offset << 4);
  data[offset + 13] = flags;
  write_be16(data, offset + 14, window);
  write_be16(data, offset + 16, checksum);
  write_be16(data, offset + 18, urgent_pointer);
  for (std::size_t i = min_size(); i < size(); ++i) data[offset + i] = 0;
}

std::optional<IcmpHeader> IcmpHeader::parse(BytesView data,
                                            std::size_t offset) {
  if (offset + size() > data.size()) return std::nullopt;
  IcmpHeader h;
  h.type = data[offset];
  h.code = data[offset + 1];
  h.checksum = read_be16(data, offset + 2);
  h.rest = read_be32(data, offset + 4);
  return h;
}

void IcmpHeader::serialize_to(BytesSpan data, std::size_t offset) const {
  write_u8(data, offset, type);
  write_u8(data, offset + 1, code);
  write_be16(data, offset + 2, checksum);
  write_be32(data, offset + 4, rest);
}

std::optional<GreHeader> GreHeader::parse(BytesView data, std::size_t offset) {
  if (offset + size() > data.size()) return std::nullopt;
  const std::uint16_t flags_version = read_be16(data, offset);
  // We only implement the base RFC 2784 header: all flag bits and the
  // version must be zero, otherwise optional fields would follow.
  if (flags_version != 0) return std::nullopt;
  GreHeader h;
  h.protocol = read_be16(data, offset + 2);
  return h;
}

void GreHeader::serialize_to(BytesSpan data, std::size_t offset) const {
  write_be16(data, offset, 0);
  write_be16(data, offset + 2, protocol);
}

std::optional<VxlanHeader> VxlanHeader::parse(BytesView data,
                                              std::size_t offset) {
  if (offset + size() > data.size()) return std::nullopt;
  const std::uint32_t flags = read_be32(data, offset);
  if ((flags & 0x08000000u) == 0) return std::nullopt;  // I flag must be set
  VxlanHeader h;
  h.vni = read_be32(data, offset + 4) >> 8;
  return h;
}

void VxlanHeader::serialize_to(BytesSpan data, std::size_t offset) const {
  write_be32(data, offset, 0x08000000u);
  write_be32(data, offset + 4, (vni & 0xffffffu) << 8);
}

}  // namespace flexsfp::net
