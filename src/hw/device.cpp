#include "hw/device.hpp"

#include <algorithm>

namespace flexsfp::hw {

double UtilizationReport::worst() const {
  return std::max({luts_pct, ffs_pct, usram_pct, lsram_pct});
}

FpgaDevice::FpgaDevice(DeviceCapacity capacity)
    : capacity_(std::move(capacity)) {}

FpgaDevice FpgaDevice::mpf100t() {
  return FpgaDevice{{.name = "MPF100T",
                     .luts = 108600,
                     .ffs = 108600,
                     .usram_blocks = 1008,
                     .lsram_blocks = 352,
                     .process_nm = 28}};
}

FpgaDevice FpgaDevice::mpf200t() {
  // Matches the paper's Table 1 "Avail." row.
  return FpgaDevice{{.name = "MPF200T",
                     .luts = 192408,
                     .ffs = 192408,
                     .usram_blocks = 1764,
                     .lsram_blocks = 616,
                     .process_nm = 28}};
}

FpgaDevice FpgaDevice::mpf300t() {
  return FpgaDevice{{.name = "MPF300T",
                     .luts = 299544,
                     .ffs = 299544,
                     .usram_blocks = 2772,
                     .lsram_blocks = 952,
                     .process_nm = 28}};
}

FpgaDevice FpgaDevice::mpf500t() {
  return FpgaDevice{{.name = "MPF500T",
                     .luts = 481036,
                     .ffs = 481036,
                     .usram_blocks = 4440,
                     .lsram_blocks = 1520,
                     .process_nm = 28}};
}

std::optional<FpgaDevice> FpgaDevice::by_name(std::string_view name) {
  for (auto& device : polarfire_family()) {
    if (device.name() == name) return device;
  }
  return std::nullopt;
}

std::vector<FpgaDevice> FpgaDevice::polarfire_family() {
  return {mpf100t(), mpf200t(), mpf300t(), mpf500t()};
}

bool FpgaDevice::fits(const ResourceUsage& usage) const {
  return usage.luts <= capacity_.luts && usage.ffs <= capacity_.ffs &&
         usage.usram_blocks <= capacity_.usram_blocks &&
         usage.lsram_blocks <= capacity_.lsram_blocks;
}

UtilizationReport FpgaDevice::utilization(const ResourceUsage& usage) const {
  auto pct = [](std::uint64_t used, std::uint64_t available) {
    return available > 0 ? 100.0 * double(used) / double(available) : 0.0;
  };
  return UtilizationReport{pct(usage.luts, capacity_.luts),
                           pct(usage.ffs, capacity_.ffs),
                           pct(usage.usram_blocks, capacity_.usram_blocks),
                           pct(usage.lsram_blocks, capacity_.lsram_blocks)};
}

}  // namespace flexsfp::hw
