#include "hw/clock.hpp"

namespace flexsfp::hw {

bool DatapathConfig::sustains_line_rate(std::uint64_t line_rate_bps,
                                        std::size_t min_packet_bytes,
                                        std::uint64_t overhead_cycles) const {
  // Wire time of the worst-case (smallest) packet, including preamble+SFD
  // (8 B), FCS (4 B) and the 12 B inter-packet gap.
  const std::size_t wire_bytes = min_packet_bytes + 24;
  const double wire_time_s =
      double(wire_bytes) * 8.0 / double(line_rate_bps);
  const double cycles_needed =
      double(beats_for(min_packet_bytes) + overhead_cycles);
  const double cycles_available = wire_time_s * double(clock.hz());
  return cycles_needed <= cycles_available;
}

}  // namespace flexsfp::hw
