// Bitstream artifacts: in this emulation a "bitstream" is a signed,
// CRC-protected container carrying the name of a PPE application plus its
// serialized configuration. The FlexSFP control plane authenticates the
// container, stages it to SPI flash and reboots into it — exactly the
// in-band reprogramming workflow §4.2 describes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/bytes.hpp"

namespace flexsfp::hw {

/// Key for the keyed-hash authentication tag. Shared between orchestrator
/// and module (provisioned at manufacturing, per §4.2).
struct AuthKey {
  std::uint64_t value = 0;
};

class Bitstream {
 public:
  /// Build and sign a bitstream for application `app_name` with serialized
  /// configuration `config`.
  [[nodiscard]] static Bitstream create(std::string app_name,
                                        net::Bytes config, AuthKey key,
                                        std::uint32_t version = 1);

  /// Parse a serialized container. Returns nullopt on truncation or CRC
  /// mismatch. Authentication is a separate, explicit step.
  [[nodiscard]] static std::optional<Bitstream> parse(net::BytesView data);

  [[nodiscard]] const std::string& app_name() const { return app_name_; }
  [[nodiscard]] const net::Bytes& config() const { return config_; }
  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] std::uint64_t auth_tag() const { return auth_tag_; }

  /// Recompute the keyed hash and compare with the embedded tag.
  [[nodiscard]] bool verify(AuthKey key) const;

  /// Wire format: magic, version, name, config, crc32, tag.
  [[nodiscard]] net::Bytes serialize() const;

  /// Size the artifact would have on SPI flash. Real PolarFire bitstreams
  /// run to megabits regardless of design size; we model a fixed shell
  /// image plus the app configuration.
  [[nodiscard]] std::size_t flash_size_bytes() const;

 private:
  std::string app_name_;
  net::Bytes config_;
  std::uint32_t version_ = 0;
  std::uint64_t auth_tag_ = 0;
};

/// The keyed hash used for bitstream and management-message authentication.
/// (A simulation stand-in for a real HMAC, with the same interface shape.)
[[nodiscard]] std::uint64_t keyed_tag(AuthKey key, net::BytesView payload);

}  // namespace flexsfp::hw
