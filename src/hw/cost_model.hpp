// Cost model: FlexSFP bill of materials and the "ideal-scaling" cost/power
// normalization of the paper's Table 3 (following the HotNets'23 fair-
// comparison methodology the paper cites as [39]): capital expense and peak
// board power are divided down to a 10 Gb/s slice of the device.
#pragma once

#include <string>
#include <vector>

namespace flexsfp::hw {

/// A closed interval of dollars (price quotes are ranges, not points).
struct UsdRange {
  double lo = 0;
  double hi = 0;

  [[nodiscard]] UsdRange scaled(double factor) const {
    return UsdRange{lo * factor, hi * factor};
  }
  UsdRange& operator+=(const UsdRange& other) {
    lo += other.lo;
    hi += other.hi;
    return *this;
  }
  [[nodiscard]] std::string to_string() const;
};

/// One line of the FlexSFP bill of materials.
struct BomItem {
  std::string name;
  UsdRange unit_cost;
};

/// The prototype BOM from §5.2: FPGA ~$200 at 1k volume, ~$10 transceiver
/// optics, $50-100 of remaining components and manufacturing.
[[nodiscard]] std::vector<BomItem> flexsfp_bom();
[[nodiscard]] UsdRange flexsfp_unit_cost();

/// One accelerator platform in the Table 3 comparison. `cost_norm_gbps` and
/// `power_norm_gbps` are the aggregate throughputs the raw figures are
/// divided by; the paper normalizes each row against the cited product's
/// own port configuration.
struct PlatformCost {
  std::string name;
  UsdRange raw_cost;
  double raw_power_lo_w = 0;
  double raw_power_hi_w = 0;
  double cost_norm_gbps = 10;
  double power_norm_gbps = 10;

  [[nodiscard]] UsdRange cost_per_10g() const {
    return raw_cost.scaled(10.0 / cost_norm_gbps);
  }
  [[nodiscard]] double power_per_10g_lo() const {
    return raw_power_lo_w * 10.0 / power_norm_gbps;
  }
  [[nodiscard]] double power_per_10g_hi() const {
    return raw_power_hi_w * 10.0 / power_norm_gbps;
  }
};

/// The four rows of Table 3 (DPU, many-core SmartNIC, FPGA SmartNIC,
/// FlexSFP). The FlexSFP row derives from flexsfp_unit_cost().
[[nodiscard]] std::vector<PlatformCost> table3_platforms();

}  // namespace flexsfp::hw
