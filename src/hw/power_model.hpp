// Component-level power model, calibrated to the paper's §5 measurement:
//   NIC alone                       3.800 W
//   NIC + standard SFP (line rate)  4.693 W  (SFP draws ~0.893 W)
//   NIC + FlexSFP (line rate, NAT)  5.320 W  (FlexSFP draws ~1.52 W)
// The optics coefficients reproduce the standard-SFP point; the FPGA
// static+dynamic coefficients reproduce the FlexSFP delta with the NAT
// design's resource usage at 156.25 MHz. Other operating points
// (different apps, clocks, widths, utilizations) then follow from the model.
#pragma once

#include "hw/clock.hpp"
#include "hw/device.hpp"
#include "hw/resources.hpp"

namespace flexsfp::hw {

/// Per-module power split, watts.
struct PowerBreakdown {
  double optics_w = 0;        // laser driver, TOSA/ROSA, limiting amplifier
  double fpga_static_w = 0;   // leakage, scales with device size
  double fpga_dynamic_w = 0;  // switching, scales with used logic x f x activity

  [[nodiscard]] double total() const {
    return optics_w + fpga_static_w + fpga_dynamic_w;
  }
};

struct PowerModel {
  /// The testbed NIC's own draw with an empty cage (paper: 3.800 W).
  [[nodiscard]] static double nic_base_watts();

  /// Optical subsystem draw at a given link utilization in [0, 1]
  /// (TX laser bias dominates; the traffic-dependent part is modest).
  [[nodiscard]] static double sfp_optics_watts(double utilization);

  /// FPGA leakage for a device of this size (28 nm PolarFire-class).
  [[nodiscard]] static double fpga_static_watts(const FpgaDevice& device);

  /// Switching power for `usage` clocked at `clock` with average net
  /// toggle `activity` in [0, 1] (0.25 is a typical datapath figure and the
  /// calibration point).
  [[nodiscard]] static double fpga_dynamic_watts(const ResourceUsage& usage,
                                                 ClockDomain clock,
                                                 double activity = 0.25);

  /// A plain transceiver: optics only.
  [[nodiscard]] static PowerBreakdown standard_sfp(double utilization);

  /// A FlexSFP: optics + FPGA running `usage` at `clock`.
  [[nodiscard]] static PowerBreakdown flexsfp(const FpgaDevice& device,
                                              const ResourceUsage& usage,
                                              ClockDomain clock,
                                              double utilization,
                                              double activity = 0.25);
};

}  // namespace flexsfp::hw
