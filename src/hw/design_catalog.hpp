// Literature FPGA designs used by the paper's Table 2 fit comparison, with
// cross-vendor normalization to 4-input logic-element equivalents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/device.hpp"

namespace flexsfp::hw {

enum class LogicUnit : std::uint8_t {
  le,    // 4-input logic elements (PolarFire LUT4)
  lut6,  // Xilinx 6-input LUTs  (1 LUT6 ~ 1.6 LE)
  alm,   // Intel ALMs           (1 ALM  ~ 2 LE)
};

struct LiteratureDesign {
  std::string name;
  std::uint64_t logic_count = 0;
  LogicUnit unit = LogicUnit::le;
  std::uint64_t bram_kbits = 0;

  [[nodiscard]] std::uint64_t logic_le_equivalent() const;
};

/// The four designs the paper tabulates.
[[nodiscard]] std::vector<LiteratureDesign> table2_designs();

struct FitVerdict {
  std::string design;
  std::uint64_t le_needed = 0;
  std::uint64_t bram_kbits_needed = 0;
  bool logic_fits = false;
  bool bram_fits = false;

  [[nodiscard]] bool fits() const { return logic_fits && bram_fits; }
};

/// Would `design` fit in `device`? (LE against LUT budget, BRAM against
/// total on-chip SRAM.)
[[nodiscard]] FitVerdict check_fit(const LiteratureDesign& design,
                                   const FpgaDevice& device);

}  // namespace flexsfp::hw
