#include "hw/form_factor.hpp"

namespace flexsfp::hw {

std::vector<FormFactor> form_factor_ladder() {
  return {
      {"SFP+", 1.5, 10, 1},      // power class with standard cooling
      {"SFP28", 2.5, 25, 1},
      {"QSFP+", 3.5, 40, 4},
      {"QSFP28", 5.0, 100, 4},
      {"QSFP-DD", 12.0, 400, 8},
      {"OSFP", 15.0, 800, 8},
  };
}

std::optional<FormFactor> smallest_form_factor(double watts,
                                               double line_gbps) {
  for (const auto& form : form_factor_ladder()) {
    if (form.accommodates(watts, line_gbps)) return form;
  }
  return std::nullopt;
}

}  // namespace flexsfp::hw
