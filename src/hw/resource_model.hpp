// Analytical FPGA resource estimators for datapath components.
//
// Fixed IP blocks (Mi-V soft core, 10G Ethernet interfaces) are catalog
// constants taken from the paper's Table 1 synthesis report. Application
// logic is estimated from first-principles formulas (bits processed, fields
// edited, table geometry) whose coefficients were calibrated once against
// the same report: with these coefficients the reference NAT build lands
// within 0.1% of the paper's 9122 LUT / 11294 FF and reproduces its
// 36 uSRAM / 160 LSRAM exactly. The coefficients are then reused unchanged
// for every other application, so relative sizes across apps are meaningful.
#pragma once

#include <cstdint>

#include "hw/resources.hpp"

namespace flexsfp::hw {

/// Memory mapping policy: how many 20 kbit LSRAM / 768 bit uSRAM blocks a
/// memory of `bits` consumes (blocks are allocated whole).
[[nodiscard]] std::uint64_t lsram_blocks_for_bits(std::uint64_t bits);
[[nodiscard]] std::uint64_t usram_blocks_for_bits(std::uint64_t bits);

/// All estimators are pure functions grouped in a namespace-like struct so
/// call sites read hw::ResourceModel::parser(...).
struct ResourceModel {
  // --- fixed IP blocks (catalog constants, from the paper's Table 1) ------
  /// Mi-V RV32 soft core running the lightweight control plane.
  [[nodiscard]] static ResourceUsage miv_rv32();
  /// 10G Ethernet IP core, electrical (edge-connector) side.
  [[nodiscard]] static ResourceUsage ethernet_iface_electrical();
  /// 10G Ethernet IP core, optical side.
  [[nodiscard]] static ResourceUsage ethernet_iface_optical();
  /// MAC/PCS for a higher line rate (§5.3 scalability): logic grows
  /// sub-linearly with rate (wider internal datapaths amortize control),
  /// buffering grows with the bandwidth-delay product.
  [[nodiscard]] static ResourceUsage ethernet_iface_scaled(double line_gbps);

  // --- application-logic estimators ---------------------------------------
  /// Header parser examining `bytes_examined` bytes on a `width_bits` bus.
  [[nodiscard]] static ResourceUsage parser(std::size_t bytes_examined,
                                            std::uint32_t width_bits);
  /// Pipelined hash unit over a `key_bits` key.
  [[nodiscard]] static ResourceUsage hash_unit(std::uint32_t key_bits);
  /// Exact-match hash table: SRAM for entries plus lookup control logic.
  /// Entry layout: key + value + 4 bits (valid/version).
  [[nodiscard]] static ResourceUsage exact_match_table(
      std::uint64_t entries, std::uint32_t key_bits, std::uint32_t value_bits);
  /// TCAM-emulation ternary table: rule+mask pairs in FFs, parallel compare.
  [[nodiscard]] static ResourceUsage ternary_table(std::uint64_t rules,
                                                   std::uint32_t key_bits);
  /// SRAM-based multi-stride LPM trie.
  [[nodiscard]] static ResourceUsage lpm_table(std::uint64_t entries);
  /// In-place field rewrite unit handling `edited_fields` fields.
  [[nodiscard]] static ResourceUsage field_edit_unit(std::size_t edited_fields,
                                                     std::uint32_t width_bits);
  /// RFC 1624 incremental checksum patcher (IPv4 + L4).
  [[nodiscard]] static ResourceUsage checksum_patch_unit();
  /// Header insertion/removal shifter for encap/decap of `shim_bytes`.
  [[nodiscard]] static ResourceUsage header_shift_unit(std::size_t shim_bytes,
                                                       std::uint32_t width_bits);
  /// Stream realignment / deparser on the egress side.
  [[nodiscard]] static ResourceUsage deparser(std::uint32_t width_bits);
  /// Control/status register file of `registers` 32-bit registers.
  [[nodiscard]] static ResourceUsage csr_block(std::size_t registers);
  /// Store-and-forward / CDC FIFO of `depth_words` x `width_bits`.
  [[nodiscard]] static ResourceUsage stream_fifo(std::size_t depth_words,
                                                 std::uint32_t width_bits);
  /// Per-app pipeline control FSM (atomic table updates, drop/forward
  /// resolution) with `states` states.
  [[nodiscard]] static ResourceUsage control_fsm(std::size_t states,
                                                 std::uint32_t width_bits);
  /// Bank of `counters` saturating counters of `bits` each (uSRAM backed).
  [[nodiscard]] static ResourceUsage counter_bank(std::uint64_t counters,
                                                  std::uint32_t bits);
  /// Bank of token buckets (rate limiter state, uSRAM backed).
  [[nodiscard]] static ResourceUsage token_bucket_bank(std::uint64_t buckets);
  /// Free-running timestamp counter + insertion datapath (telemetry).
  [[nodiscard]] static ResourceUsage timestamp_unit();
};

}  // namespace flexsfp::hw
