#include "hw/resources.hpp"

#include <cmath>
#include <cstdio>

namespace flexsfp::hw {

ResourceUsage ResourceUsage::scaled(double factor) const {
  auto scale = [factor](std::uint64_t v) {
    return static_cast<std::uint64_t>(std::ceil(double(v) * factor));
  };
  return ResourceUsage{scale(luts), scale(ffs), scale(usram_blocks),
                       scale(lsram_blocks)};
}

std::string ResourceUsage::to_string() const {
  char buffer[128];
  std::snprintf(buffer, sizeof buffer,
                "%llu LUT, %llu FF, %llu uSRAM, %llu LSRAM",
                static_cast<unsigned long long>(luts),
                static_cast<unsigned long long>(ffs),
                static_cast<unsigned long long>(usram_blocks),
                static_cast<unsigned long long>(lsram_blocks));
  return buffer;
}

void ResourceBreakdown::add(std::string name, ResourceUsage usage) {
  components_.push_back(ComponentUsage{std::move(name), usage});
}

ResourceUsage ResourceBreakdown::total() const {
  ResourceUsage total;
  for (const auto& component : components_) total += component.usage;
  return total;
}

void ResourceBreakdown::merge(const std::string& prefix,
                              const ResourceBreakdown& other) {
  for (const auto& component : other.components()) {
    components_.push_back(
        ComponentUsage{prefix + component.name, component.usage});
  }
}

}  // namespace flexsfp::hw
