#include "hw/design_catalog.hpp"

#include <cmath>

namespace flexsfp::hw {

std::uint64_t LiteratureDesign::logic_le_equivalent() const {
  switch (unit) {
    case LogicUnit::le:
      return logic_count;
    case LogicUnit::lut6:
      return static_cast<std::uint64_t>(
          std::llround(double(logic_count) * le_per_lut6));
    case LogicUnit::alm:
      return static_cast<std::uint64_t>(
          std::llround(double(logic_count) * le_per_alm));
  }
  return logic_count;
}

std::vector<LiteratureDesign> table2_designs() {
  return {
      {"FlowBlaze (1 stage)", 71712, LogicUnit::lut6, 14148},
      {"Pigasus", 207960, LogicUnit::alm, 64400},
      {"hXDP (1 core)", 68689, LogicUnit::lut6, 1799},
      {"ClickNP IPSec GW", 242592, LogicUnit::lut6, 39161},
  };
}

FitVerdict check_fit(const LiteratureDesign& design, const FpgaDevice& device) {
  FitVerdict verdict;
  verdict.design = design.name;
  verdict.le_needed = design.logic_le_equivalent();
  verdict.bram_kbits_needed = design.bram_kbits;
  verdict.logic_fits = verdict.le_needed <= device.capacity().luts;
  verdict.bram_fits = verdict.bram_kbits_needed <= device.capacity().total_sram_kbits();
  return verdict;
}

}  // namespace flexsfp::hw
