#include "hw/resource_model.hpp"
#include <cmath>

namespace flexsfp::hw {

std::uint64_t lsram_blocks_for_bits(std::uint64_t bits) {
  return (bits + lsram_block_bits - 1) / lsram_block_bits;
}

std::uint64_t usram_blocks_for_bits(std::uint64_t bits) {
  return (bits + usram_block_bits - 1) / usram_block_bits;
}

ResourceUsage ResourceModel::miv_rv32() {
  return ResourceUsage{8696, 376, 6, 4};
}

ResourceUsage ResourceModel::ethernet_iface_electrical() {
  return ResourceUsage{6824, 6924, 118, 0};
}

ResourceUsage ResourceModel::ethernet_iface_optical() {
  return ResourceUsage{6813, 6924, 118, 0};
}

ResourceUsage ResourceModel::ethernet_iface_scaled(double line_gbps) {
  const ResourceUsage base = ethernet_iface_electrical();
  const double ratio = line_gbps / 10.0;
  if (ratio <= 1.0) return base;
  const double logic_factor = std::pow(ratio, 0.85);
  const double memory_factor = ratio * 0.5;  // wider words absorb half
  return ResourceUsage{
      static_cast<std::uint64_t>(double(base.luts) * logic_factor),
      static_cast<std::uint64_t>(double(base.ffs) * logic_factor),
      static_cast<std::uint64_t>(double(base.usram_blocks) * memory_factor),
      base.lsram_blocks};
}

// Calibrated logic coefficients (see header comment). Each constant is the
// per-unit cost in 4LUTs / FFs of the named structure.
namespace {
constexpr std::uint64_t parser_luts_per_byte = 56;
constexpr std::uint64_t parser_ffs_per_byte = 64;
constexpr std::uint64_t hash_luts_per_bit = 32;
constexpr std::uint64_t hash_ffs_per_bit = 36;
constexpr std::uint64_t em_ctl_base_luts = 900;
constexpr std::uint64_t em_ctl_base_ffs = 1200;
constexpr std::uint64_t em_ctl_luts_per_entry_bit = 8;
constexpr std::uint64_t em_ctl_ffs_per_entry_bit = 14;
constexpr std::uint64_t edit_base_luts = 500;
constexpr std::uint64_t edit_base_ffs = 600;
constexpr std::uint64_t deparser_luts_per_bit = 22;
constexpr std::uint64_t deparser_ffs_per_bit = 30;
constexpr std::uint64_t csr_luts_per_reg = 14;
constexpr std::uint64_t csr_ffs_per_reg = 18;
constexpr std::uint64_t fifo_luts = 64;
constexpr std::uint64_t fifo_ffs = 96;
constexpr std::uint64_t fsm_luts_per_state = 50;
constexpr std::uint64_t fsm_ffs_per_state = 40;
}  // namespace

ResourceUsage ResourceModel::parser(std::size_t bytes_examined,
                                    std::uint32_t width_bits) {
  // Field extraction muxes scale with bytes examined; the shift network
  // scales with bus width.
  return ResourceUsage{
      parser_luts_per_byte * bytes_examined + 2ull * width_bits,
      parser_ffs_per_byte * bytes_examined + 4ull * width_bits, 0, 0};
}

ResourceUsage ResourceModel::hash_unit(std::uint32_t key_bits) {
  return ResourceUsage{hash_luts_per_bit * key_bits,
                       hash_ffs_per_bit * key_bits, 0, 0};
}

ResourceUsage ResourceModel::exact_match_table(std::uint64_t entries,
                                               std::uint32_t key_bits,
                                               std::uint32_t value_bits) {
  const std::uint64_t entry_bits = std::uint64_t{key_bits} + value_bits + 4;
  ResourceUsage usage = hash_unit(key_bits);
  usage.luts += em_ctl_base_luts + em_ctl_luts_per_entry_bit * entry_bits;
  usage.ffs += em_ctl_base_ffs + em_ctl_ffs_per_entry_bit * entry_bits;
  usage.lsram_blocks = lsram_blocks_for_bits(entries * entry_bits);
  return usage;
}

ResourceUsage ResourceModel::ternary_table(std::uint64_t rules,
                                           std::uint32_t key_bits) {
  // TCAM emulation: each rule stores value+mask in FFs (2 bits of state per
  // key bit) and burns ~0.7 LUT per key bit for the masked compare, plus a
  // priority encoder that grows with the rule count.
  const std::uint64_t compare_luts = rules * (7 * key_bits) / 10;
  const std::uint64_t rule_ffs = rules * 2 * key_bits;
  const std::uint64_t encoder_luts = 4 * rules + 200;
  return ResourceUsage{compare_luts + encoder_luts, rule_ffs + 100, 0, 0};
}

ResourceUsage ResourceModel::lpm_table(std::uint64_t entries) {
  // Two-level 16/8/8 stride trie in LSRAM: level tables sized for the entry
  // count, plus walk control.
  const std::uint64_t node_bits = 40;  // pointer/prefix/valid per node
  const std::uint64_t nodes = entries * 3;
  return ResourceUsage{1600, 1900, 0,
                       lsram_blocks_for_bits(nodes * node_bits)};
}

ResourceUsage ResourceModel::field_edit_unit(std::size_t edited_fields,
                                             std::uint32_t width_bits) {
  return ResourceUsage{edit_base_luts * edited_fields + 4ull * width_bits,
                       edit_base_ffs * edited_fields + 6ull * width_bits, 0,
                       0};
}

ResourceUsage ResourceModel::checksum_patch_unit() {
  return ResourceUsage{420, 380, 0, 0};
}

ResourceUsage ResourceModel::header_shift_unit(std::size_t shim_bytes,
                                               std::uint32_t width_bits) {
  // Barrel shifter across the bus plus shim assembly registers.
  return ResourceUsage{12ull * width_bits + 30ull * shim_bytes,
                       16ull * width_bits + 8ull * shim_bytes, 0, 0};
}

ResourceUsage ResourceModel::deparser(std::uint32_t width_bits) {
  return ResourceUsage{deparser_luts_per_bit * width_bits,
                       deparser_ffs_per_bit * width_bits, 0, 0};
}

ResourceUsage ResourceModel::csr_block(std::size_t registers) {
  return ResourceUsage{csr_luts_per_reg * registers,
                       csr_ffs_per_reg * registers, 0, 0};
}

ResourceUsage ResourceModel::stream_fifo(std::size_t depth_words,
                                         std::uint32_t width_bits) {
  return ResourceUsage{
      fifo_luts, fifo_ffs,
      usram_blocks_for_bits(std::uint64_t{depth_words} * width_bits), 0};
}

ResourceUsage ResourceModel::control_fsm(std::size_t states,
                                         std::uint32_t width_bits) {
  return ResourceUsage{fsm_luts_per_state * states + 2ull * width_bits,
                       fsm_ffs_per_state * states + 2ull * width_bits, 0, 0};
}

ResourceUsage ResourceModel::counter_bank(std::uint64_t counters,
                                          std::uint32_t bits) {
  return ResourceUsage{300 + 2 * bits, 200 + bits,
                       usram_blocks_for_bits(counters * bits), 0};
}

ResourceUsage ResourceModel::token_bucket_bank(std::uint64_t buckets) {
  // Per-bucket state: 32 b level + 32 b last-refill timestamp.
  return ResourceUsage{900, 700, usram_blocks_for_bits(buckets * 64), 0};
}

ResourceUsage ResourceModel::timestamp_unit() {
  return ResourceUsage{500, 650, 0, 0};
}

}  // namespace flexsfp::hw
