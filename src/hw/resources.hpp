// FPGA resource accounting in PolarFire terms: 4-input LUTs, flip-flops,
// uSRAM blocks (64 x 12 bit) and LSRAM blocks (20 kbit).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace flexsfp::hw {

/// PolarFire uSRAM block: 64 words x 12 bits.
inline constexpr std::uint64_t usram_block_bits = 64 * 12;
/// PolarFire LSRAM block: 20 kbit.
inline constexpr std::uint64_t lsram_block_bits = 20 * 1024;

/// Resource vector for one design component. Addition composes components
/// into a design; comparison against a device budget decides fit.
struct ResourceUsage {
  std::uint64_t luts = 0;          // 4-input LUT equivalents
  std::uint64_t ffs = 0;           // D flip-flops
  std::uint64_t usram_blocks = 0;  // 64x12 bit blocks
  std::uint64_t lsram_blocks = 0;  // 20 kbit blocks

  constexpr ResourceUsage& operator+=(const ResourceUsage& other) {
    luts += other.luts;
    ffs += other.ffs;
    usram_blocks += other.usram_blocks;
    lsram_blocks += other.lsram_blocks;
    return *this;
  }
  friend constexpr ResourceUsage operator+(ResourceUsage a,
                                           const ResourceUsage& b) {
    a += b;
    return a;
  }
  /// Scale every dimension (e.g. replicating a PPE lane). Rounds up.
  [[nodiscard]] ResourceUsage scaled(double factor) const;

  [[nodiscard]] std::uint64_t usram_bits() const {
    return usram_blocks * usram_block_bits;
  }
  [[nodiscard]] std::uint64_t lsram_bits() const {
    return lsram_blocks * lsram_block_bits;
  }
  [[nodiscard]] std::uint64_t total_memory_bits() const {
    return usram_bits() + lsram_bits();
  }

  friend constexpr auto operator<=>(const ResourceUsage&,
                                    const ResourceUsage&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// A named component line-item, so a design can be reported broken down by
/// component exactly like the paper's Table 1.
struct ComponentUsage {
  std::string name;
  ResourceUsage usage;
};

/// Ordered component list with a computed total.
class ResourceBreakdown {
 public:
  void add(std::string name, ResourceUsage usage);
  [[nodiscard]] const std::vector<ComponentUsage>& components() const {
    return components_;
  }
  [[nodiscard]] ResourceUsage total() const;
  /// Merge another breakdown's components under a prefix ("nat/...").
  void merge(const std::string& prefix, const ResourceBreakdown& other);

 private:
  std::vector<ComponentUsage> components_;
};

}  // namespace flexsfp::hw
