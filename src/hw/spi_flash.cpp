#include "hw/spi_flash.hpp"

namespace flexsfp::hw {

using namespace sim;  // time literals

SpiFlash::SpiFlash(std::size_t slots, std::uint64_t capacity_bits)
    : slots_(slots),
      slot_capacity_bytes_(slots > 0 ? capacity_bits / 8 / slots : 0) {}

sim::TimePs SpiFlash::program_time(std::size_t bytes) {
  constexpr std::size_t sector = 4096;
  constexpr std::size_t page = 256;
  const std::size_t sectors = (bytes + sector - 1) / sector;
  const std::size_t pages = (bytes + page - 1) / page;
  const sim::TimePs erase = static_cast<sim::TimePs>(sectors) * 45_ms;
  const sim::TimePs program = static_cast<sim::TimePs>(pages) * 600_us;
  return erase + program;
}

std::optional<sim::TimePs> SpiFlash::write(std::size_t slot,
                                           const Bitstream& image) {
  if (slot >= slots_.size()) return std::nullopt;
  if (image.flash_size_bytes() > slot_capacity_bytes_) return std::nullopt;
  slots_[slot].image = image;
  ++slots_[slot].erase_cycles;
  return program_time(image.flash_size_bytes());
}

std::optional<Bitstream> SpiFlash::read(std::size_t slot) const {
  if (slot >= slots_.size()) return std::nullopt;
  return slots_[slot].image;
}

std::uint64_t SpiFlash::erase_cycles(std::size_t slot) const {
  return slot < slots_.size() ? slots_[slot].erase_cycles : 0;
}

}  // namespace flexsfp::hw
