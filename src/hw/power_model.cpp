#include "hw/power_model.hpp"

#include <algorithm>

namespace flexsfp::hw {

namespace {
// Calibration constants (see header).
constexpr double nic_base_w = 3.800;
constexpr double optics_idle_w = 0.720;
constexpr double optics_active_w = 0.173;   // at 100% utilization
constexpr double static_w_per_mlut = 0.58;  // leakage per million 4LUTs
// Dynamic power per (LUT-equivalent x Hz x activity). FFs toggle at roughly
// half the weight of LUT output nets in this normalization.
constexpr double dynamic_w_per_lut_hz = 3.0e-13;
}  // namespace

double PowerModel::nic_base_watts() { return nic_base_w; }

double PowerModel::sfp_optics_watts(double utilization) {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return optics_idle_w + optics_active_w * u;
}

double PowerModel::fpga_static_watts(const FpgaDevice& device) {
  return static_w_per_mlut * double(device.capacity().luts) / 1e6;
}

double PowerModel::fpga_dynamic_watts(const ResourceUsage& usage,
                                      ClockDomain clock, double activity) {
  const double lut_equiv = double(usage.luts) + double(usage.ffs) / 2.0;
  return dynamic_w_per_lut_hz * lut_equiv * double(clock.hz()) *
         std::clamp(activity, 0.0, 1.0);
}

PowerBreakdown PowerModel::standard_sfp(double utilization) {
  return PowerBreakdown{.optics_w = sfp_optics_watts(utilization)};
}

PowerBreakdown PowerModel::flexsfp(const FpgaDevice& device,
                                   const ResourceUsage& usage,
                                   ClockDomain clock, double utilization,
                                   double activity) {
  // Dynamic switching scales with how much traffic actually flows.
  const double traffic_activity =
      activity * std::clamp(utilization, 0.05, 1.0);
  return PowerBreakdown{
      .optics_w = sfp_optics_watts(utilization),
      .fpga_static_w = fpga_static_watts(device),
      .fpga_dynamic_w = fpga_dynamic_watts(usage, clock, traffic_activity)};
}

}  // namespace flexsfp::hw
