// Pluggable-module form factors and their MSA power/thermal envelopes
// (§5.3: "Higher-speed interconnects rely on larger form factors like QSFP,
// and OSFP ... designed with higher power and thermal envelopes").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace flexsfp::hw {

struct FormFactor {
  std::string name;
  double max_power_w = 0;   // MSA power class ceiling
  double max_line_gbps = 0; // aggregate electrical interface rate
  unsigned lanes = 1;

  /// Can a module drawing `watts` at `line_gbps` live in this cage?
  [[nodiscard]] bool accommodates(double watts, double line_gbps) const {
    return watts <= max_power_w && line_gbps <= max_line_gbps;
  }
};

/// The MSA ladder, ordered small to large. Power ceilings follow the
/// highest standard power class of each family.
[[nodiscard]] std::vector<FormFactor> form_factor_ladder();

/// Smallest form factor that accommodates the design point, or nullopt when
/// even OSFP cannot (the §5.3 scaling wall).
[[nodiscard]] std::optional<FormFactor> smallest_form_factor(
    double watts, double line_gbps);

}  // namespace flexsfp::hw
