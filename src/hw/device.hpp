// FPGA device catalog and cross-vendor logic-element normalization.
//
// Capacities for the PolarFire family come from the Microchip datasheet
// figures cited by the paper; the MPF200T numbers match the paper's Table 1
// "Avail." row exactly. Cross-vendor conversions follow the paper's Table 2
// footnotes: 1 Xilinx LUT6 ~ 1.6 LE, 1 Intel ALM ~ 2 LE.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hw/resources.hpp"

namespace flexsfp::hw {

/// Conversion factors to 4-input logic-element equivalents (Table 2 notes).
inline constexpr double le_per_lut6 = 1.6;
inline constexpr double le_per_alm = 2.0;

struct DeviceCapacity {
  std::string name;
  std::uint64_t luts = 0;          // 4LUT count (== LE count for PolarFire)
  std::uint64_t ffs = 0;
  std::uint64_t usram_blocks = 0;
  std::uint64_t lsram_blocks = 0;
  /// Process node, for the scalability discussion (§5.3).
  unsigned process_nm = 28;

  [[nodiscard]] std::uint64_t total_sram_kbits() const {
    return (usram_blocks * usram_block_bits +
            lsram_blocks * lsram_block_bits) /
           1024;
  }
};

/// Utilization of one resource dimension, as a percentage.
struct UtilizationReport {
  double luts_pct = 0;
  double ffs_pct = 0;
  double usram_pct = 0;
  double lsram_pct = 0;

  [[nodiscard]] double worst() const;
};

/// A concrete FPGA with capacity checks.
class FpgaDevice {
 public:
  explicit FpgaDevice(DeviceCapacity capacity);

  /// Named parts. `mpf200t()` is the paper's prototype device.
  [[nodiscard]] static FpgaDevice mpf100t();
  [[nodiscard]] static FpgaDevice mpf200t();
  [[nodiscard]] static FpgaDevice mpf300t();
  [[nodiscard]] static FpgaDevice mpf500t();
  [[nodiscard]] static std::optional<FpgaDevice> by_name(std::string_view name);
  [[nodiscard]] static std::vector<FpgaDevice> polarfire_family();

  [[nodiscard]] const DeviceCapacity& capacity() const { return capacity_; }
  [[nodiscard]] const std::string& name() const { return capacity_.name; }

  [[nodiscard]] bool fits(const ResourceUsage& usage) const;
  [[nodiscard]] UtilizationReport utilization(const ResourceUsage& usage) const;

 private:
  DeviceCapacity capacity_;
};

}  // namespace flexsfp::hw
