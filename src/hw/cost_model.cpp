#include "hw/cost_model.hpp"

#include <cstdio>

namespace flexsfp::hw {

std::string UsdRange::to_string() const {
  char buffer[64];
  if (lo == hi) {
    std::snprintf(buffer, sizeof buffer, "$%.0f", lo);
  } else {
    std::snprintf(buffer, sizeof buffer, "$%.0f-%.0f", lo, hi);
  }
  return buffer;
}

std::vector<BomItem> flexsfp_bom() {
  return {
      {"MPF200T-FCSG325E FPGA (1k volume)", {200, 200}},
      {"10GBASE-SR optics (TOSA/ROSA/driver)", {10, 10}},
      {"SPI flash, oscillator, regulators", {15, 30}},
      {"6-layer PCB + assembly/reflow", {20, 40}},
      {"Inspection + functional test", {15, 30}},
  };
}

UsdRange flexsfp_unit_cost() {
  UsdRange total;
  for (const auto& item : flexsfp_bom()) total += item.unit_cost;
  return total;  // ~$260-310; volume pushes toward the low end
}

std::vector<PlatformCost> table3_platforms() {
  // Normalization throughputs follow the cited products: the paper divides
  // each row by the port configuration of the reference card. Where the
  // paper mixed sources within one row (many-core: Agilio CX pricing,
  // DSC-25 power), both normalizations are kept so the printed row matches.
  const UsdRange flexsfp_cost{250, 300};  // volume-projected band from BOM
  return {
      {.name = "DPU (BF-2)",
       .raw_cost = {1500, 2000},
       .raw_power_lo_w = 75,
       .raw_power_hi_w = 75,
       .cost_norm_gbps = 50,  // 2 x 25G BlueField-2
       .power_norm_gbps = 50},
      {.name = "Many-core (Ag./DSC)",
       .raw_cost = {800, 1200},
       .raw_power_lo_w = 25,
       .raw_power_hi_w = 25,
       .cost_norm_gbps = 80,  // Agilio CX 2 x 40G list pricing
       .power_norm_gbps = 50},  // DSC-25 2 x 25G board power
      {.name = "FPGA (U25/U50)",
       .raw_cost = {2000, 4000},
       .raw_power_lo_w = 45,
       .raw_power_hi_w = 75,
       .cost_norm_gbps = 100,  // U50 1 x 100G; U25 lands at the high end
       .power_norm_gbps = 70},
      {.name = "FlexSFP",
       .raw_cost = flexsfp_cost,
       .raw_power_lo_w = 1.5,
       .raw_power_hi_w = 1.5,
       .cost_norm_gbps = 10,
       .power_norm_gbps = 10},
  };
}

}  // namespace flexsfp::hw
