// Clocking and datapath-width arithmetic: the quantities behind every
// line-rate claim in the paper ("clocked at 156.25 MHz with a 64 b datapath,
// sufficient for line rate").
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace flexsfp::hw {

/// A synchronous clock domain.
class ClockDomain {
 public:
  constexpr ClockDomain() = default;
  explicit constexpr ClockDomain(std::uint64_t frequency_hz)
      : frequency_hz_(frequency_hz) {}

  [[nodiscard]] static constexpr ClockDomain mhz(double m) {
    return ClockDomain{static_cast<std::uint64_t>(m * 1e6)};
  }

  [[nodiscard]] constexpr std::uint64_t hz() const { return frequency_hz_; }
  [[nodiscard]] constexpr double mhz_value() const {
    return double(frequency_hz_) * 1e-6;
  }
  /// Duration of one cycle in picoseconds (rounded to nearest).
  [[nodiscard]] constexpr sim::TimePs cycle_time() const {
    return frequency_hz_ > 0
               ? static_cast<sim::TimePs>((1e12 + double(frequency_hz_) / 2) /
                                          double(frequency_hz_))
               : 0;
  }
  [[nodiscard]] constexpr sim::TimePs cycles_to_time(std::uint64_t cycles) const {
    return static_cast<sim::TimePs>(cycles) * cycle_time();
  }

  friend constexpr auto operator<=>(const ClockDomain&,
                                    const ClockDomain&) = default;

 private:
  std::uint64_t frequency_hz_ = 0;
};

/// The SFP+ reference clock the paper's prototype uses (10GbE XGMII rate).
inline constexpr ClockDomain clock_156_25_mhz{156'250'000};

/// Bus geometry of a streaming packet datapath.
struct DatapathConfig {
  std::uint32_t width_bits = 64;
  ClockDomain clock = clock_156_25_mhz;

  [[nodiscard]] constexpr std::uint32_t width_bytes() const {
    return width_bits / 8;
  }
  /// Raw bus bandwidth in bits/second.
  [[nodiscard]] constexpr std::uint64_t bandwidth_bps() const {
    return std::uint64_t{width_bits} * clock.hz();
  }
  /// Bus beats needed to stream a packet of `bytes` through the pipe.
  [[nodiscard]] constexpr std::uint64_t beats_for(std::size_t bytes) const {
    const std::uint32_t wb = width_bytes();
    return (bytes + wb - 1) / wb;
  }
  /// True when this geometry can absorb `line_rate_bps` of minimum-size
  /// packets: per-packet beats must fit into the packet's wire time,
  /// including the extra fixed `overhead_cycles` charged per packet.
  [[nodiscard]] bool sustains_line_rate(std::uint64_t line_rate_bps,
                                        std::size_t min_packet_bytes = 64,
                                        std::uint64_t overhead_cycles = 0) const;
};

}  // namespace flexsfp::hw
