#include "hw/bitstream.hpp"

#include "net/checksum.hpp"
#include "net/flow.hpp"

namespace flexsfp::hw {

namespace {
constexpr std::uint32_t bitstream_magic = 0x46535350;  // "FSSP"
// Fixed architecture-shell image size on flash (model constant): the PPE
// shell, MACs and Mi-V occupy the same fabric regardless of the app.
constexpr std::size_t shell_image_bytes = 2 * 1024 * 1024;
}  // namespace

std::uint64_t keyed_tag(AuthKey key, net::BytesView payload) {
  // Two-pass keyed hash (inner then outer key variant), HMAC-shaped.
  const std::uint64_t inner =
      net::murmur3_64(payload, key.value ^ 0x5c5c5c5c5c5c5c5cull);
  std::uint8_t block[8];
  for (int i = 0; i < 8; ++i) {
    block[i] = static_cast<std::uint8_t>(inner >> (8 * i));
  }
  return net::murmur3_64(net::BytesView{block, 8},
                         key.value ^ 0x3636363636363636ull);
}

Bitstream Bitstream::create(std::string app_name, net::Bytes config,
                            AuthKey key, std::uint32_t version) {
  Bitstream b;
  b.app_name_ = std::move(app_name);
  b.config_ = std::move(config);
  b.version_ = version;
  // Tag covers name + version + config.
  net::Bytes covered;
  covered.insert(covered.end(), b.app_name_.begin(), b.app_name_.end());
  covered.push_back(static_cast<std::uint8_t>(version));
  covered.insert(covered.end(), b.config_.begin(), b.config_.end());
  b.auth_tag_ = keyed_tag(key, covered);
  return b;
}

bool Bitstream::verify(AuthKey key) const {
  net::Bytes covered;
  covered.insert(covered.end(), app_name_.begin(), app_name_.end());
  covered.push_back(static_cast<std::uint8_t>(version_));
  covered.insert(covered.end(), config_.begin(), config_.end());
  return keyed_tag(key, covered) == auth_tag_;
}

net::Bytes Bitstream::serialize() const {
  // Layout: magic(4) version(4) name_len(2) name config_len(4) config
  //         tag(8) crc32(4, over everything before it)
  net::Bytes out(4 + 4 + 2 + app_name_.size() + 4 + config_.size() + 8 + 4);
  std::size_t offset = 0;
  net::write_be32(out, offset, bitstream_magic);
  offset += 4;
  net::write_be32(out, offset, version_);
  offset += 4;
  net::write_be16(out, offset, static_cast<std::uint16_t>(app_name_.size()));
  offset += 2;
  for (const char c : app_name_) out[offset++] = static_cast<std::uint8_t>(c);
  net::write_be32(out, offset, static_cast<std::uint32_t>(config_.size()));
  offset += 4;
  std::copy(config_.begin(), config_.end(),
            out.begin() + static_cast<std::ptrdiff_t>(offset));
  offset += config_.size();
  net::write_be64(out, offset, auth_tag_);
  offset += 8;
  const std::uint32_t crc =
      net::crc32(net::BytesView{out.data(), offset});
  net::write_be32(out, offset, crc);
  return out;
}

std::optional<Bitstream> Bitstream::parse(net::BytesView data) {
  if (data.size() < 4 + 4 + 2 + 4 + 8 + 4) return std::nullopt;
  if (net::read_be32(data, 0) != bitstream_magic) return std::nullopt;

  const std::uint32_t stored_crc = net::read_be32(data, data.size() - 4);
  const std::uint32_t computed_crc =
      net::crc32(data.subspan(0, data.size() - 4));
  if (stored_crc != computed_crc) return std::nullopt;

  Bitstream b;
  b.version_ = net::read_be32(data, 4);
  const std::size_t name_len = net::read_be16(data, 8);
  std::size_t offset = 10;
  if (offset + name_len + 4 + 8 + 4 > data.size()) return std::nullopt;
  b.app_name_.assign(reinterpret_cast<const char*>(data.data() + offset),
                     name_len);
  offset += name_len;
  const std::size_t config_len = net::read_be32(data, offset);
  offset += 4;
  if (offset + config_len + 8 + 4 > data.size()) return std::nullopt;
  b.config_.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                   data.begin() + static_cast<std::ptrdiff_t>(offset + config_len));
  offset += config_len;
  b.auth_tag_ = net::read_be64(data, offset);
  return b;
}

std::size_t Bitstream::flash_size_bytes() const {
  return shell_image_bytes + serialize().size();
}

}  // namespace flexsfp::hw
