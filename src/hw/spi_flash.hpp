// SPI NOR flash model: the 128 Mb device on the prototype board that holds
// multiple design images (§4.3) so the module can reboot into a different
// application at runtime. Models capacity, slotting, erase-before-write
// timing and per-slot wear counters.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/bitstream.hpp"
#include "sim/time.hpp"

namespace flexsfp::hw {

class SpiFlash {
 public:
  /// 128 Mb part split into `slots` equal design slots (slot 0 is the
  /// factory/golden image by convention).
  explicit SpiFlash(std::size_t slots = 4,
                    std::uint64_t capacity_bits = 128ull * 1024 * 1024);

  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t slot_capacity_bytes() const {
    return slot_capacity_bytes_;
  }

  /// Erase + program a bitstream into `slot`. Returns the operation's
  /// duration (what the reconfiguration FSM must wait), or nullopt when the
  /// slot index is bad or the image doesn't fit.
  [[nodiscard]] std::optional<sim::TimePs> write(std::size_t slot,
                                                 const Bitstream& image);

  /// Image currently stored in `slot`, if any.
  [[nodiscard]] std::optional<Bitstream> read(std::size_t slot) const;

  [[nodiscard]] std::uint64_t erase_cycles(std::size_t slot) const;

  /// Total program time for `bytes` (erase + page programming), a model of
  /// typical NOR timing: 4 KiB sector erase ~45 ms each... scaled to the
  /// affected region; 256 B page program ~600 us.
  [[nodiscard]] static sim::TimePs program_time(std::size_t bytes);

 private:
  struct Slot {
    std::optional<Bitstream> image;
    std::uint64_t erase_cycles = 0;
  };

  std::vector<Slot> slots_;
  std::uint64_t slot_capacity_bytes_;
};

}  // namespace flexsfp::hw
