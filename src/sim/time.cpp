#include "sim/time.hpp"

#include <cstdio>

namespace flexsfp::sim {

std::string format_time(TimePs t) {
  char buffer[48];
  const double abs_t = t < 0 ? -double(t) : double(t);
  if (abs_t < 1e3) {
    std::snprintf(buffer, sizeof buffer, "%lld ps", static_cast<long long>(t));
  } else if (abs_t < 1e6) {
    std::snprintf(buffer, sizeof buffer, "%.3f ns", double(t) * 1e-3);
  } else if (abs_t < 1e9) {
    std::snprintf(buffer, sizeof buffer, "%.3f us", double(t) * 1e-6);
  } else if (abs_t < 1e12) {
    std::snprintf(buffer, sizeof buffer, "%.3f ms", double(t) * 1e-9);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.3f s", double(t) * 1e-12);
  }
  return buffer;
}

}  // namespace flexsfp::sim
