#include "sim/random.hpp"

#include <algorithm>
#include <cmath>

namespace flexsfp::sim {

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  return std::uniform_int_distribution<std::uint64_t>{lo, hi}(engine_);
}

double Rng::uniform_real() {
  return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
}

double Rng::exponential(double mean) {
  return std::exponential_distribution<double>{1.0 / mean}(engine_);
}

double Rng::pareto(double alpha, double x_min) {
  const double u = 1.0 - uniform_real();  // (0, 1]
  return x_min / std::pow(u, 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>{mu, sigma}(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution{p}(engine_);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(double(rank), s);
    cdf_[rank - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform_real();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

}  // namespace flexsfp::sim
