#include "sim/random.hpp"

#include <algorithm>
#include <cmath>

namespace flexsfp::sim {

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  return std::uniform_int_distribution<std::uint64_t>{lo, hi}(engine_);
}

double Rng::uniform_real() {
  return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
}

double Rng::exponential(double mean) {
  return std::exponential_distribution<double>{1.0 / mean}(engine_);
}

double Rng::pareto(double alpha, double x_min) {
  const double u = 1.0 - uniform_real();  // (0, 1]
  return x_min / std::pow(u, 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>{mu, sigma}(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution{p}(engine_);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(double(rank), s);
    cdf_[rank - 1] = total;
  }
  for (auto& c : cdf_) c /= total;

  slot_lo_.resize(kSlots + 1);
  std::size_t lo = 0;
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    const double boundary = double(slot) / double(kSlots);
    while (lo < n && cdf_[lo] < boundary) ++lo;
    slot_lo_[slot] = static_cast<std::uint32_t>(lo);
  }
  slot_lo_[kSlots] = static_cast<std::uint32_t>(n);
}

std::size_t ZipfDistribution::sample_u(double u) const {
  // u lies in slot floor(u * kSlots), so lower_bound(cdf_, u) lands in
  // [slot_lo_[slot], slot_lo_[slot + 1]] — search only that span.
  const std::size_t slot =
      std::min(static_cast<std::size_t>(u * double(kSlots)), kSlots - 1);
  const auto first = cdf_.begin() + slot_lo_[slot];
  const auto last =
      cdf_.begin() +
      std::min<std::size_t>(slot_lo_[slot + 1] + 1, cdf_.size());
  const auto it = std::lower_bound(first, last, u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

}  // namespace flexsfp::sim
