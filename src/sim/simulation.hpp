// Discrete-event simulation core: a time-ordered event queue plus the
// per-run services every component needs (packet ids, packet buffers,
// tracing).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace flexsfp::sim {

/// The simulation owns time. Components schedule closures; run() executes
/// them in (time, insertion-order) sequence. Deterministic by construction:
/// ties are broken by a monotone sequence number, never by pointer order.
///
/// The hot path is allocation-free: closures are stored inline in slab
/// nodes (sim::EventQueue) and packets come from the per-simulation
/// PacketPool, so a sharded run does bounded work per packet with one pool
/// and one queue per shard. Every queue/pool tally is surfaced as
/// sim.queue.* / pool.* series through a registry collector.
class Simulation {
 public:
  using EventFn = std::function<void()>;

  Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (events in the past are clamped to
  /// now — hardware can't act retroactively). Callables up to
  /// EventQueue::kInlineClosure bytes are stored without allocating.
  template <class F>
  void schedule_at(TimePs at, F&& fn) {
    if (at < now_) at = now_;
    queue_.push(at, std::forward<F>(fn));
  }
  /// schedule_at(now + delay), saturating at the time horizon instead of
  /// wrapping — a "practically forever" timer stays in the future.
  template <class F>
  void schedule_in(TimePs delay, F&& fn) {
    schedule_at(saturating_add(now_, delay), std::forward<F>(fn));
  }

  /// Max events sharing one timestamp executed per event-queue drain call
  /// (the batched-dispatch width). 1 reproduces the scalar pop-per-event
  /// loop; execution order and every observable metric are bit-identical at
  /// any width (see EventQueue::drain_front). Initialized from the
  /// FLEXSFP_BATCH_WIDTH environment variable (default 16, clamped to
  /// [1, 64]).
  static constexpr std::size_t kDefaultBatchWidth = 16;
  static constexpr std::size_t kMaxBatchWidth = 64;
  void set_batch_width(std::size_t width);
  [[nodiscard]] std::size_t batch_width() const { return batch_width_; }

  /// Run everything; returns the number of events executed.
  std::size_t run();
  /// Run until simulated time exceeds `deadline` (events at exactly
  /// `deadline` still execute).
  std::size_t run_until(TimePs deadline);
  /// Conservative-sync primitive: execute every event strictly *before*
  /// `horizon`, then advance now() to `horizon` (even if the queue emptied
  /// first). A shard that has run_before(T) can never again produce a
  /// timestamp < T, which is what makes it safe to hand its outbound
  /// packets to other shards at the window boundary.
  std::size_t run_before(TimePs horizon);
  /// Execute a single event; false when the queue is empty.
  bool step();

  /// Earliest pending event's time, or time_horizon when the queue is
  /// empty. Non-const: locating the minimum may advance the calendar
  /// window. The lockstep window scheduler sizes the next safe window off
  /// the minimum of this across shards, plus the link-delay lookahead.
  [[nodiscard]] TimePs next_event_time();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// Events executed since construction (across run/run_until/step) — the
  /// work metric shard-parallel runs merge and report.
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Fresh packet identity for tracing.
  [[nodiscard]] net::PacketId next_packet_id() { return ++last_packet_id_; }

  /// The run's packet buffers: one pool per simulation = one per shard, so
  /// sharded runs never free across shards and pool.* series merge
  /// deterministically. Components allocate and clone through this.
  [[nodiscard]] net::PacketPool& packet_pool() { return pool_; }
  [[nodiscard]] const net::PacketPool& packet_pool() const { return pool_; }

  /// The run's telemetry spine: every component registers its counters here
  /// (one registry per simulation = one per shard, merged at the barrier).
  [[nodiscard]] obs::MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricRegistry& metrics() const { return metrics_; }

  /// Per-packet stage-hop ring. Sampling is keyed off packet ids, so which
  /// packets fly is identical across sequential and sharded runs.
  [[nodiscard]] obs::FlightRecorder& flight() { return flight_; }
  [[nodiscard]] const obs::FlightRecorder& flight() const { return flight_; }

  /// Event-queue hot-path tallies (also visible as sim.queue.* series).
  [[nodiscard]] const EventQueue::Stats& queue_stats() const {
    return queue_.stats();
  }

 private:
  EventQueue queue_;
  TimePs now_ = 0;
  std::size_t batch_width_ = kDefaultBatchWidth;
  std::uint64_t executed_ = 0;
  net::PacketId last_packet_id_ = 0;
  net::PacketPool pool_;
  obs::MetricRegistry metrics_;
  obs::FlightRecorder flight_;
};

/// Anything that can receive a packet (a port, a queue, a sink...).
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle_packet(net::PacketPtr packet) = 0;
};

/// Adapts a lambda into a PacketHandler — convenient for tests and for
/// wiring topology glue.
class LambdaHandler final : public PacketHandler {
 public:
  explicit LambdaHandler(std::function<void(net::PacketPtr)> fn)
      : fn_(std::move(fn)) {}
  void handle_packet(net::PacketPtr packet) override { fn_(std::move(packet)); }

 private:
  std::function<void(net::PacketPtr)> fn_;
};

}  // namespace flexsfp::sim
