// Discrete-event simulation core: a time-ordered event queue plus the
// per-run services every component needs (packet ids, tracing).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/packet.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace flexsfp::sim {

/// The simulation owns time. Components schedule closures; run() executes
/// them in (time, insertion-order) sequence. Deterministic by construction:
/// ties are broken by a monotone sequence number, never by pointer order.
class Simulation {
 public:
  using EventFn = std::function<void()>;

  [[nodiscard]] TimePs now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (events in the past are clamped to
  /// now — hardware can't act retroactively).
  void schedule_at(TimePs at, EventFn fn);
  void schedule_in(TimePs delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run everything; returns the number of events executed.
  std::size_t run();
  /// Run until simulated time exceeds `deadline` (events at exactly
  /// `deadline` still execute).
  std::size_t run_until(TimePs deadline);
  /// Execute a single event; false when the queue is empty.
  bool step();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// Events executed since construction (across run/run_until/step) — the
  /// work metric shard-parallel runs merge and report.
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Fresh packet identity for tracing.
  [[nodiscard]] net::PacketId next_packet_id() { return ++last_packet_id_; }

  /// The run's telemetry spine: every component registers its counters here
  /// (one registry per simulation = one per shard, merged at the barrier).
  [[nodiscard]] obs::MetricRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricRegistry& metrics() const { return metrics_; }

  /// Per-packet stage-hop ring. Sampling is keyed off packet ids, so which
  /// packets fly is identical across sequential and sharded runs.
  [[nodiscard]] obs::FlightRecorder& flight() { return flight_; }
  [[nodiscard]] const obs::FlightRecorder& flight() const { return flight_; }

 private:
  struct Entry {
    TimePs at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  TimePs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  net::PacketId last_packet_id_ = 0;
  obs::MetricRegistry metrics_;
  obs::FlightRecorder flight_;
};

/// Anything that can receive a packet (a port, a queue, a sink...).
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle_packet(net::PacketPtr packet) = 0;
};

/// Adapts a lambda into a PacketHandler — convenient for tests and for
/// wiring topology glue.
class LambdaHandler final : public PacketHandler {
 public:
  explicit LambdaHandler(std::function<void(net::PacketPtr)> fn)
      : fn_(std::move(fn)) {}
  void handle_packet(net::PacketPtr packet) override { fn_(std::move(packet)); }

 private:
  std::function<void(net::PacketPtr)> fn_;
};

}  // namespace flexsfp::sim
