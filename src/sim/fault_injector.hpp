// Deterministic fault injection: make the failures the cable is supposed to
// detect (§3: "link flapping, microbursts, or fiber breaks") actually happen.
//
// A FaultInjector is a PacketHandler that attaches between any producer and
// any downstream PacketHandler (a Link, a module port, a sink) and subjects
// the stream to a seeded fault process: BER-style bit corruption, random
// packet loss, duplication, bounded reorder, timed link-flap (link-down)
// windows and targeted loss of frames selected by a predicate (e.g.
// management frames). Every decision comes from one Rng — derive it with
// Rng::for_stream so shard-parallel runs stay bit-identical to the
// sequential oracle — and every injected fault is accounted for in the
// obs:: registry and the flight recorder: a faulted packet is never
// silently lost, it is dropped-with-counter or corrupted-with-counter.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace flexsfp::sim {

/// One scheduled link-down window (a flap). Windows may overlap; the link
/// is down while any window covers now().
struct FlapWindow {
  TimePs start = 0;
  TimePs duration = 0;
};

struct FaultSpec {
  /// Per-bit error probability; a frame of N bytes is corrupted with
  /// probability 1-(1-ber)^(8N) and a uniformly chosen bit is flipped.
  double ber = 0.0;
  /// Per-packet random loss probability.
  double drop_prob = 0.0;
  /// Per-packet duplication probability (the copy follows immediately).
  double duplicate_prob = 0.0;
  /// Per-packet probability of being held for `reorder_delay_ps`, letting
  /// later packets overtake it (bounded reorder: one window, no starvation).
  double reorder_prob = 0.0;
  TimePs reorder_delay_ps = 1'000'000;  // 1 us
  /// Loss probability applied only to frames matched by `target`
  /// (management-frame loss experiments). 0 disables the classifier.
  double target_drop_prob = 0.0;
  /// Scheduled link-down windows (flaps). All arrivals inside a window are
  /// dropped and counted as flap drops.
  std::vector<FlapWindow> flaps;
  /// Every random decision derives from this seed (use derive_stream_seed
  /// for per-shard injectors).
  std::uint64_t seed = 1;

  [[nodiscard]] bool any_random_fault() const {
    return ber > 0 || drop_prob > 0 || duplicate_prob > 0 ||
           reorder_prob > 0 || target_drop_prob > 0;
  }
};

/// Counters mirrored from the registry, for convenience in tests/benches.
struct FaultTally {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;       // random loss
  std::uint64_t target_dropped = 0;  // predicate-matched loss
  std::uint64_t flap_dropped = 0;  // lost inside a link-down window
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;

  /// Everything the injector intentionally removed from the stream.
  [[nodiscard]] std::uint64_t total_dropped() const {
    return dropped + target_dropped + flap_dropped;
  }
};

class FaultInjector final : public PacketHandler {
 public:
  using TargetFilter = std::function<bool(const net::Packet&)>;

  /// `name` keys the registry series fault.*{injector=<name>} (uniquified
  /// per simulation).
  FaultInjector(Simulation& sim, FaultSpec spec, PacketHandler& destination,
                std::string name = "fault");

  void handle_packet(net::PacketPtr packet) override;

  /// Frames matched by `filter` are additionally dropped with
  /// `spec.target_drop_prob` — e.g. sfp::is_mgmt_frame for targeted
  /// management-plane loss. (A std::function parameter keeps sim:: free of
  /// an sfp:: dependency.)
  void set_target_filter(TargetFilter filter) {
    target_filter_ = std::move(filter);
  }

  /// Take the link down for `duration` starting now (an immediate flap).
  void flap_now(TimePs duration);
  [[nodiscard]] bool link_up() const;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// Registry-backed counters: fault.delivered / fault.dropped /
  /// fault.target_dropped / fault.flap_dropped / fault.corrupted /
  /// fault.duplicated / fault.reordered, all {injector=<name>}.
  [[nodiscard]] FaultTally tally() const;

 private:
  void deliver(net::PacketPtr packet);
  void corrupt(net::Packet& packet);

  Simulation& sim_;
  FaultSpec spec_;
  PacketHandler& destination_;
  std::string name_;
  Rng rng_;
  TargetFilter target_filter_;
  std::vector<FlapWindow> extra_flaps_;  // flap_now() additions
  obs::MetricId delivered_id_;
  obs::MetricId dropped_id_;
  obs::MetricId target_dropped_id_;
  obs::MetricId flap_dropped_id_;
  obs::MetricId corrupted_id_;
  obs::MetricId duplicated_id_;
  obs::MetricId reordered_id_;
  obs::MetricId link_up_id_;
  std::uint16_t flight_stage_ = 0;
};

}  // namespace flexsfp::sim
