#include "sim/link.hpp"

#include <utility>

namespace flexsfp::sim {

Link::Link(Simulation& sim, DataRate rate, TimePs propagation_delay,
           PacketHandler& destination, std::string name)
    : sim_(sim),
      rate_(rate),
      propagation_delay_(propagation_delay),
      destination_(destination),
      name_(sim.metrics().unique_name(std::move(name))) {
  meter_.bind(sim_.metrics(), "link.traffic", {{"link", name_}});
  wire_meter_.bind(sim_.metrics(), "link.wire", {{"link", name_}});
  busy_id_ = sim_.metrics().counter("link.busy_ps", {{"link", name_}});
  flight_stage_ = sim_.flight().register_stage(name_);
}

void Link::handle_packet(net::PacketPtr packet) {
  const TimePs start = std::max(sim_.now(), next_free_);
  // Serialization and busy time are wire-byte quantities; the goodput meter
  // records frame bytes and the wire meter the bytes actually occupying the
  // line, so utilization() and delivered-rate figures never mix units.
  const std::size_t wire_bytes = packet->wire_size();
  const TimePs ser = ser_(wire_bytes);
  next_free_ = start + ser;
  sim_.metrics().add(busy_id_, std::uint64_t(ser));
  meter_.record(packet->size());
  wire_meter_.record(wire_bytes);
  if (sim_.flight().sampled(packet->id())) {
    sim_.flight().record(packet->id(), flight_stage_, obs::HopKind::transit,
                         start, 0, std::uint64_t(ser));
  }
  const TimePs arrival = next_free_ + propagation_delay_;
  sim_.schedule_at(arrival, [this, token = lifetime_.token(),
                             packet = std::move(packet)]() mutable {
    if (!token.alive()) return;  // link torn down while the packet flew
    destination_.handle_packet(std::move(packet));
  });
}

bool BoundedQueue::push(net::PacketPtr packet) {
  if (count_ >= capacity_) {
    ++drops_;
    return false;
  }
  if (count_ == slots_.size()) grow();
  slots_[(head_ + count_) & (slots_.size() - 1)] = std::move(packet);
  ++count_;
  return true;
}

net::PacketPtr BoundedQueue::pop() {
  if (count_ == 0) return nullptr;
  auto packet = std::move(slots_[head_]);
  head_ = (head_ + 1) & (slots_.size() - 1);
  --count_;
  return packet;
}

void BoundedQueue::grow() {
  std::vector<net::PacketPtr> bigger(std::max<std::size_t>(slots_.size() * 2, 16));
  for (std::size_t i = 0; i < count_; ++i) {
    bigger[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
  }
  slots_.swap(bigger);
  head_ = 0;
}

QueuedServer::QueuedServer(Simulation& sim, std::size_t queue_capacity,
                           std::string stage)
    : sim_(sim),
      queue_(queue_capacity),
      stage_(sim.metrics().unique_name(std::move(stage))) {
  served_.bind(sim_.metrics(), "server.served", {{"stage", stage_}});
  drops_id_ = sim_.metrics().counter("server.queue_drops", {{"stage", stage_}});
  busy_id_ = sim_.metrics().counter("server.busy_ps", {{"stage", stage_}});
  watermark_id_ =
      sim_.metrics().gauge("server.queue_high_watermark", {{"stage", stage_}});
  flight_stage_ = sim_.flight().register_stage(stage_);
}

void QueuedServer::handle_packet(net::PacketPtr packet) {
  const net::PacketId id = packet->id();
  if (!queue_.push(std::move(packet))) {
    sim_.metrics().add(drops_id_);
    if (sim_.flight().sampled(id)) {
      sim_.flight().record(id, flight_stage_, obs::HopKind::queue_drop,
                           sim_.now(),
                           static_cast<std::uint32_t>(queue_.size()));
    }
    return;
  }
  sim_.metrics().set_max(watermark_id_, queue_.size());
  if (!busy_) start_service();
}

void QueuedServer::start_service() {
  auto packet = queue_.pop();
  if (!packet) return;
  busy_ = true;
  const TimePs service = service_time(*packet);
  sim_.metrics().add(busy_id_, std::uint64_t(service));
  served_.record(packet->size());
  if (sim_.flight().sampled(packet->id())) {
    sim_.flight().record(packet->id(), flight_stage_, obs::HopKind::serve,
                         sim_.now(),
                         static_cast<std::uint32_t>(queue_.size()),
                         std::uint64_t(service));
  }
  sim_.schedule_in(service, [this, token = lifetime_.token(),
                             packet = std::move(packet)]() mutable {
    if (!token.alive()) return;  // server torn down mid-service
    finish(std::move(packet));
    busy_ = false;
    if (!queue_.empty()) start_service();
  });
}

}  // namespace flexsfp::sim
