#include "sim/link.hpp"

#include <utility>

namespace flexsfp::sim {

Link::Link(Simulation& sim, DataRate rate, TimePs propagation_delay,
           PacketHandler& destination, std::string name)
    : sim_(sim),
      rate_(rate),
      propagation_delay_(propagation_delay),
      destination_(destination),
      name_(std::move(name)) {}

void Link::handle_packet(net::PacketPtr packet) {
  const TimePs start = std::max(sim_.now(), next_free_);
  const TimePs ser = rate_.serialization_time(packet->wire_size());
  next_free_ = start + ser;
  busy_time_ += ser;
  meter_.record(packet->size());
  const TimePs arrival = next_free_ + propagation_delay_;
  sim_.schedule_at(arrival, [this, packet = std::move(packet)]() mutable {
    destination_.handle_packet(std::move(packet));
  });
}

bool BoundedQueue::push(net::PacketPtr packet) {
  if (queue_.size() >= capacity_) {
    ++drops_;
    return false;
  }
  queue_.push_back(std::move(packet));
  high_watermark_ = std::max(high_watermark_, queue_.size());
  return true;
}

net::PacketPtr BoundedQueue::pop() {
  if (queue_.empty()) return nullptr;
  auto packet = std::move(queue_.front());
  queue_.pop_front();
  return packet;
}

void QueuedServer::handle_packet(net::PacketPtr packet) {
  if (!queue_.push(std::move(packet))) return;  // dropped, counted
  if (!busy_) start_service();
}

void QueuedServer::start_service() {
  auto packet = queue_.pop();
  if (!packet) return;
  busy_ = true;
  const TimePs service = service_time(*packet);
  busy_time_ += service;
  served_.record(packet->size());
  sim_.schedule_in(service, [this, packet = std::move(packet)]() mutable {
    finish(std::move(packet));
    busy_ = false;
    if (!queue_.empty()) start_service();
  });
}

}  // namespace flexsfp::sim
