#include "sim/fault_injector.hpp"

#include <cmath>
#include <utility>

namespace flexsfp::sim {

FaultInjector::FaultInjector(Simulation& sim, FaultSpec spec,
                             PacketHandler& destination, std::string name)
    : sim_(sim),
      spec_(std::move(spec)),
      destination_(destination),
      name_(sim.metrics().unique_name(std::move(name))),
      rng_(spec_.seed) {
  const obs::Labels labels{{"injector", name_}};
  delivered_id_ = sim_.metrics().counter("fault.delivered", labels);
  dropped_id_ = sim_.metrics().counter("fault.dropped", labels);
  target_dropped_id_ = sim_.metrics().counter("fault.target_dropped", labels);
  flap_dropped_id_ = sim_.metrics().counter("fault.flap_dropped", labels);
  corrupted_id_ = sim_.metrics().counter("fault.corrupted", labels);
  duplicated_id_ = sim_.metrics().counter("fault.duplicated", labels);
  reordered_id_ = sim_.metrics().counter("fault.reordered", labels);
  link_up_id_ = sim_.metrics().gauge("fault.link_up", labels);
  sim_.metrics().set(link_up_id_, 1);
  flight_stage_ = sim_.flight().register_stage(name_);
}

bool FaultInjector::link_up() const {
  const TimePs now = sim_.now();
  const auto covers = [now](const FlapWindow& w) {
    return now >= w.start && now < w.start + w.duration;
  };
  for (const auto& w : spec_.flaps) {
    if (covers(w)) return false;
  }
  for (const auto& w : extra_flaps_) {
    if (covers(w)) return false;
  }
  return true;
}

void FaultInjector::flap_now(TimePs duration) {
  extra_flaps_.push_back(FlapWindow{sim_.now(), duration});
}

void FaultInjector::corrupt(net::Packet& packet) {
  if (packet.size() == 0) return;
  const std::uint64_t bit =
      rng_.uniform(0, std::uint64_t(packet.size()) * 8 - 1);
  packet.data()[static_cast<std::size_t>(bit / 8)] ^=
      static_cast<std::uint8_t>(1u << (bit % 8));
}

void FaultInjector::handle_packet(net::PacketPtr packet) {
  const net::PacketId id = packet->id();
  const bool sampled = sim_.flight().sampled(id);

  // Link-flap windows first: no light, nothing else matters.
  const bool up = link_up();
  sim_.metrics().set(link_up_id_, up ? 1 : 0);
  if (!up) {
    sim_.metrics().add(flap_dropped_id_);
    if (sampled) {
      sim_.flight().record(id, flight_stage_, obs::HopKind::fault_drop,
                           sim_.now(), 0, /*aux=*/2);
    }
    return;
  }

  // Targeted loss (e.g. management frames) ahead of the blanket loss so a
  // mgmt-loss experiment does not also need drop_prob > 0.
  if (spec_.target_drop_prob > 0 && target_filter_ &&
      target_filter_(*packet) && rng_.bernoulli(spec_.target_drop_prob)) {
    sim_.metrics().add(target_dropped_id_);
    if (sampled) {
      sim_.flight().record(id, flight_stage_, obs::HopKind::fault_drop,
                           sim_.now(), 0, /*aux=*/1);
    }
    return;
  }

  if (spec_.drop_prob > 0 && rng_.bernoulli(spec_.drop_prob)) {
    sim_.metrics().add(dropped_id_);
    if (sampled) {
      sim_.flight().record(id, flight_stage_, obs::HopKind::fault_drop,
                           sim_.now(), 0, /*aux=*/0);
    }
    return;
  }

  // BER corruption: P(frame hit) = 1 - (1-ber)^bits, one uniformly chosen
  // bit flipped. The packet continues — corrupted, counted, never vanished.
  if (spec_.ber > 0) {
    const double bits = double(packet->size()) * 8.0;
    const double p_hit = -std::expm1(bits * std::log1p(-spec_.ber));
    if (rng_.bernoulli(p_hit)) {
      corrupt(*packet);
      sim_.metrics().add(corrupted_id_);
      if (sampled) {
        sim_.flight().record(id, flight_stage_, obs::HopKind::fault_corrupt,
                             sim_.now());
      }
    }
  }

  if (spec_.duplicate_prob > 0 && rng_.bernoulli(spec_.duplicate_prob)) {
    auto copy = sim_.packet_pool().clone(*packet);
    copy->set_id(sim_.next_packet_id());
    sim_.metrics().add(duplicated_id_);
    if (sim_.flight().sampled(copy->id())) {
      sim_.flight().record(copy->id(), flight_stage_, obs::HopKind::fault_dup,
                           sim_.now(), 0, /*aux=*/id);
    }
    deliver(std::move(copy));
  }

  // Bounded reorder: hold this packet for one delay window so packets
  // behind it overtake, then release. No starvation: one window, ever.
  if (spec_.reorder_prob > 0 && rng_.bernoulli(spec_.reorder_prob)) {
    sim_.metrics().add(reordered_id_);
    if (sampled) {
      sim_.flight().record(id, flight_stage_, obs::HopKind::fault_reorder,
                           sim_.now(), 0,
                           std::uint64_t(spec_.reorder_delay_ps));
    }
    sim_.schedule_in(spec_.reorder_delay_ps,
                     [this, packet = std::move(packet)]() mutable {
                       deliver(std::move(packet));
                     });
    return;
  }

  deliver(std::move(packet));
}

void FaultInjector::deliver(net::PacketPtr packet) {
  sim_.metrics().add(delivered_id_);
  destination_.handle_packet(std::move(packet));
}

FaultTally FaultInjector::tally() const {
  const auto& metrics = sim_.metrics();
  FaultTally tally;
  tally.delivered = metrics.value(delivered_id_);
  tally.dropped = metrics.value(dropped_id_);
  tally.target_dropped = metrics.value(target_dropped_id_);
  tally.flap_dropped = metrics.value(flap_dropped_id_);
  tally.corrupted = metrics.value(corrupted_id_);
  tally.duplicated = metrics.value(duplicated_id_);
  tally.reordered = metrics.value(reordered_id_);
  return tally;
}

}  // namespace flexsfp::sim
