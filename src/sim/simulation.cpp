#include "sim/simulation.hpp"

#include <algorithm>
#include <cstdlib>

namespace flexsfp::sim {

namespace {

std::size_t batch_width_from_env() {
  const char* raw = std::getenv("FLEXSFP_BATCH_WIDTH");
  if (raw == nullptr || *raw == '\0') return Simulation::kDefaultBatchWidth;
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (end == raw || parsed < 1) return Simulation::kDefaultBatchWidth;
  return std::min(static_cast<std::size_t>(parsed),
                  Simulation::kMaxBatchWidth);
}

void add_counter(obs::MetricSnapshot& snap, const char* name,
                 std::uint64_t value) {
  snap.add_sample({name, {}, obs::MetricKind::counter, value});
}

void add_gauge(obs::MetricSnapshot& snap, const char* name,
               std::uint64_t value) {
  snap.add_sample({name, {}, obs::MetricKind::gauge, value});
}

}  // namespace

Simulation::Simulation() : batch_width_(batch_width_from_env()) {
  // Surface the hot-path tallies without touching the registry per event:
  // the queue and pool count in plain members, snapshots pull them here.
  metrics_.register_collector([this](obs::MetricSnapshot& snap) {
    const EventQueue::Stats& queue = queue_.stats();
    add_counter(snap, "sim.queue.pushed", queue.pushed);
    add_counter(snap, "sim.queue.inline_closures", queue.inline_closures);
    add_counter(snap, "sim.queue.boxed_closures", queue.boxed_closures);
    add_counter(snap, "sim.queue.overflow_spills", queue.overflow_spills);
    add_counter(snap, "sim.queue.window_rebuilds", queue.window_rebuilds);
    add_counter(snap, "sim.queue.slabs", queue.slabs_allocated);
    add_gauge(snap, "sim.queue.pending_high_watermark",
              queue.pending_high_watermark);

    const net::PacketPool::Stats pool = pool_.stats();
    add_counter(snap, "pool.made", pool.made);
    add_counter(snap, "pool.reused", pool.reused);
    add_counter(snap, "pool.fresh", pool.fresh);
    add_counter(snap, "pool.heap_fallbacks", pool.heap_fallbacks);
    add_gauge(snap, "pool.in_use", pool.in_use);
    add_gauge(snap, "pool.free", pool.free_count);
    add_gauge(snap, "pool.high_watermark", pool.high_watermark);
    add_gauge(snap, "pool.capacity", pool.capacity);
  });
}

void Simulation::set_batch_width(std::size_t width) {
  batch_width_ = std::clamp<std::size_t>(width, 1, kMaxBatchWidth);
}

// The run loops drain the same-timestamp frontier in batches of up to
// batch_width_ events per EventQueue call. A drained batch never reaches
// past its timestamp, so the deadline/horizon checks below stay exact: once
// min_time() passes the bound, no batched event has either.
std::size_t Simulation::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    now_ = queue_.min_time();
    const std::size_t n = queue_.drain_front(batch_width_);
    executed_ += n;
    executed += n;
  }
  return executed;
}

std::size_t Simulation::run_until(TimePs deadline) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const TimePs at = queue_.min_time();
    if (at > deadline) break;
    now_ = at;
    const std::size_t n = queue_.drain_front(batch_width_);
    executed_ += n;
    executed += n;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::size_t Simulation::run_before(TimePs horizon) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const TimePs at = queue_.min_time();
    if (at >= horizon) break;
    now_ = at;
    const std::size_t n = queue_.drain_front(batch_width_);
    executed_ += n;
    executed += n;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

TimePs Simulation::next_event_time() {
  return queue_.empty() ? time_horizon : queue_.min_time();
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  EventQueue::Popped event = queue_.pop();
  now_ = event.at();
  ++executed_;
  event.invoke();
  return true;
}

}  // namespace flexsfp::sim
