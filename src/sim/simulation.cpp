#include "sim/simulation.hpp"

#include <utility>

namespace flexsfp::sim {

void Simulation::schedule_at(TimePs at, EventFn fn) {
  if (at < now_) at = now_;
  queue_.push(Entry{at, next_seq_++, std::move(fn)});
}

std::size_t Simulation::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t Simulation::run_until(TimePs deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the closure handle instead (shared closures are cheap here).
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.at;
  ++executed_;
  entry.fn();
  return true;
}

}  // namespace flexsfp::sim
