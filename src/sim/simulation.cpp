#include "sim/simulation.hpp"

namespace flexsfp::sim {

namespace {

void add_counter(obs::MetricSnapshot& snap, const char* name,
                 std::uint64_t value) {
  snap.add_sample({name, {}, obs::MetricKind::counter, value});
}

void add_gauge(obs::MetricSnapshot& snap, const char* name,
               std::uint64_t value) {
  snap.add_sample({name, {}, obs::MetricKind::gauge, value});
}

}  // namespace

Simulation::Simulation() {
  // Surface the hot-path tallies without touching the registry per event:
  // the queue and pool count in plain members, snapshots pull them here.
  metrics_.register_collector([this](obs::MetricSnapshot& snap) {
    const EventQueue::Stats& queue = queue_.stats();
    add_counter(snap, "sim.queue.pushed", queue.pushed);
    add_counter(snap, "sim.queue.inline_closures", queue.inline_closures);
    add_counter(snap, "sim.queue.boxed_closures", queue.boxed_closures);
    add_counter(snap, "sim.queue.overflow_spills", queue.overflow_spills);
    add_counter(snap, "sim.queue.window_rebuilds", queue.window_rebuilds);
    add_counter(snap, "sim.queue.slabs", queue.slabs_allocated);
    add_gauge(snap, "sim.queue.pending_high_watermark",
              queue.pending_high_watermark);

    const net::PacketPool::Stats pool = pool_.stats();
    add_counter(snap, "pool.made", pool.made);
    add_counter(snap, "pool.reused", pool.reused);
    add_counter(snap, "pool.fresh", pool.fresh);
    add_counter(snap, "pool.heap_fallbacks", pool.heap_fallbacks);
    add_gauge(snap, "pool.in_use", pool.in_use);
    add_gauge(snap, "pool.free", pool.free_count);
    add_gauge(snap, "pool.high_watermark", pool.high_watermark);
    add_gauge(snap, "pool.capacity", pool.capacity);
  });
}

std::size_t Simulation::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

std::size_t Simulation::run_until(TimePs deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.min_time() <= deadline) {
    step();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::size_t Simulation::run_before(TimePs horizon) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.min_time() < horizon) {
    step();
    ++executed;
  }
  if (now_ < horizon) now_ = horizon;
  return executed;
}

TimePs Simulation::next_event_time() {
  return queue_.empty() ? time_horizon : queue_.min_time();
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  EventQueue::Popped event = queue_.pop();
  now_ = event.at();
  ++executed_;
  event.invoke();
  return true;
}

}  // namespace flexsfp::sim
