// Deterministic randomness for workload generation.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace flexsfp::sim {

/// SplitMix64 finalizer (Steele et al.): a full-avalanche 64-bit hash.
/// Nearby inputs produce statistically independent outputs, which is what
/// makes it safe for deriving per-shard seed streams.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Seed for stream `stream_id` of a run keyed by `base_seed`. Never
/// `base_seed + stream_id`: sequential seeds into the same engine family
/// yield correlated streams, so both inputs go through the hash.
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(
    std::uint64_t base_seed, std::uint64_t stream_id) {
  return splitmix64(splitmix64(base_seed) + stream_id);
}

/// Seeded PRNG wrapper. Every generator in a run derives from an explicit
/// seed so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Independent generator for stream `stream_id` of a run keyed by
  /// `base_seed` — one per shard/worker in parallel experiments.
  [[nodiscard]] static Rng for_stream(std::uint64_t base_seed,
                                      std::uint64_t stream_id) {
    return Rng(derive_stream_seed(base_seed, stream_id));
  }

  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);
  [[nodiscard]] double uniform_real();  // [0, 1)
  /// Exponential inter-arrival with the given mean.
  [[nodiscard]] double exponential(double mean);
  /// Pareto with shape alpha and scale x_min (heavy-tailed flow sizes).
  [[nodiscard]] double pareto(double alpha, double x_min);
  /// Lognormal (used by the VCSEL wear-out model, per the paper's §5.3).
  [[nodiscard]] double lognormal(double mu, double sigma);
  [[nodiscard]] bool bernoulli(double p);

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed ranks in [1, n]: the canonical skewed flow popularity
/// model ("a few elephant flows, many mice").
class ZipfDistribution {
 public:
  /// `s` is the skew exponent (s = 0 degenerates to uniform).
  ZipfDistribution(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const {
    return sample_u(rng.uniform_real());
  }
  /// Rank for one uniform draw u in [0, 1): the deterministic core of
  /// sample(), exposed so tests can probe exact slot-boundary inputs
  /// against a plain full-CDF binary search.
  [[nodiscard]] std::size_t sample_u(double u) const;
  [[nodiscard]] std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probability for ranks 1..n
  // First-level index: slot k holds lower_bound(cdf_, k / kSlots), so
  // sample() binary-searches only the few CDF entries a slot spans instead
  // of the whole table. Pure accelerator — the returned rank is identical.
  static constexpr std::size_t kSlots = 1024;
  std::vector<std::uint32_t> slot_lo_;
};

}  // namespace flexsfp::sim
