#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace flexsfp::sim {

unsigned resolve_workers(std::size_t jobs, unsigned requested) {
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned want = requested == 0 ? hardware : requested;
  return static_cast<unsigned>(
      std::min<std::size_t>(jobs == 0 ? 1 : jobs, want));
}

unsigned resolve_threads(std::size_t jobs, unsigned requested) {
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  return std::min(resolve_workers(jobs, requested), hardware);
}

void parallel_for_each_shard(std::size_t jobs, unsigned workers,
                             const std::function<void(std::size_t)>& body) {
  if (jobs == 0) return;
  const unsigned pool = resolve_threads(jobs, workers);

  if (pool <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) body(i);
    return;
  }

  // Work-stealing by atomic ticket: each worker claims the next unclaimed
  // shard index. Which thread runs which shard is nondeterministic; shard
  // results are indexed, so callers merge deterministically afterwards.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t first_error_index = jobs;
  std::exception_ptr first_error;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pool - 1);
  for (unsigned t = 1; t < pool; ++t) threads.emplace_back(worker);
  worker();  // the caller thread participates
  for (auto& thread : threads) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

void run_lockstep_rounds(std::size_t jobs, unsigned workers,
                         const std::function<void(std::size_t)>& advance,
                         const std::function<bool()>& exchange) {
  if (jobs == 0) return;
  const unsigned pool = resolve_threads(jobs, workers);

  if (pool <= 1) {
    do {
      for (std::size_t i = 0; i < jobs; ++i) advance(i);
    } while (exchange());
    return;
  }

  // Generation barrier shared by the pool. The round counter is the
  // generation: workers sleep until it moves, drain the ticket, then report
  // in; the caller thread flips the generation, drains tickets itself,
  // waits for busy == 0, and runs the exchange while everyone is parked.
  // The mutex around the round/busy handshake is what publishes the
  // caller's exchange-phase writes (scheduled boundary events) to the
  // workers, and the workers' advance-phase writes back to the caller.
  struct Barrier {
    std::mutex mutex;
    std::condition_variable start;
    std::condition_variable done;
    std::uint64_t round = 0;
    unsigned busy = 0;
    bool stop = false;
    std::atomic<std::size_t> ticket{0};
    std::size_t first_error_index = 0;
    std::exception_ptr first_error;
  } barrier;
  barrier.first_error_index = jobs;

  auto drain = [&] {
    while (true) {
      const std::size_t i =
          barrier.ticket.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        advance(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(barrier.mutex);
        if (i < barrier.first_error_index) {
          barrier.first_error_index = i;
          barrier.first_error = std::current_exception();
        }
      }
    }
  };

  auto worker = [&] {
    std::uint64_t seen = 0;
    while (true) {
      std::unique_lock<std::mutex> lock(barrier.mutex);
      barrier.start.wait(lock,
                         [&] { return barrier.stop || barrier.round != seen; });
      if (barrier.stop) return;
      seen = barrier.round;
      lock.unlock();
      drain();
      lock.lock();
      if (--barrier.busy == 0) barrier.done.notify_one();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pool - 1);
  for (unsigned t = 1; t < pool; ++t) threads.emplace_back(worker);

  const auto shut_down = [&] {
    {
      const std::lock_guard<std::mutex> lock(barrier.mutex);
      barrier.stop = true;
    }
    barrier.start.notify_all();
    for (auto& thread : threads) thread.join();
  };

  try {
    bool more = true;
    while (more) {
      barrier.ticket.store(0, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(barrier.mutex);
        barrier.busy = pool - 1;
        ++barrier.round;
      }
      barrier.start.notify_all();
      drain();  // the caller thread advances shards too
      {
        std::unique_lock<std::mutex> lock(barrier.mutex);
        barrier.done.wait(lock, [&] { return barrier.busy == 0; });
      }
      if (barrier.first_error) break;
      more = exchange();  // workers are parked: cross-shard state is safe
    }
  } catch (...) {
    shut_down();
    throw;
  }
  shut_down();
  if (barrier.first_error) std::rethrow_exception(barrier.first_error);
}

}  // namespace flexsfp::sim
