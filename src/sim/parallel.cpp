#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace flexsfp::sim {

unsigned resolve_workers(std::size_t jobs, unsigned requested) {
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned want = requested == 0 ? hardware : requested;
  return static_cast<unsigned>(
      std::min<std::size_t>(jobs == 0 ? 1 : jobs, want));
}

void parallel_for_each_shard(std::size_t jobs, unsigned workers,
                             const std::function<void(std::size_t)>& body) {
  if (jobs == 0) return;
  const unsigned pool = resolve_workers(jobs, workers);

  if (pool <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) body(i);
    return;
  }

  // Work-stealing by atomic ticket: each worker claims the next unclaimed
  // shard index. Which thread runs which shard is nondeterministic; shard
  // results are indexed, so callers merge deterministically afterwards.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t first_error_index = jobs;
  std::exception_ptr first_error;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(pool - 1);
  for (unsigned t = 1; t < pool; ++t) threads.emplace_back(worker);
  worker();  // the caller thread participates
  for (auto& thread : threads) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace flexsfp::sim
