#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace flexsfp::sim {

EventQueue::EventQueue() : ring_(kBuckets) {}

EventQueue::~EventQueue() {
  // Destroy every pending closure; node memory is slab-owned.
  destroy_pending(current_);
  for (auto& slot : ring_) destroy_pending(slot);
  destroy_pending(overflow_);
}

void EventQueue::destroy_pending(std::vector<Ref>& refs) {
  for (const Ref& ref : refs) {
    if (ref.node->destroy != nullptr) ref.node->destroy(ref.node->storage);
  }
  refs.clear();
}

EventQueue::Node* EventQueue::acquire_node() {
  if (free_nodes_ == nullptr) {
    auto slab = std::make_unique<Node[]>(kSlabNodes);
    for (std::size_t i = 0; i < kSlabNodes; ++i) {
      slab[i].next_free = free_nodes_;
      free_nodes_ = &slab[i];
    }
    slabs_.push_back(std::move(slab));
    ++stats_.slabs_allocated;
  }
  Node* node = free_nodes_;
  free_nodes_ = node->next_free;
  return node;
}

void EventQueue::release_node(Node* node) {
  node->invoke = nullptr;
  node->destroy = nullptr;
  node->next_free = free_nodes_;
  free_nodes_ = node;
}

void EventQueue::insert(const Ref& ref) {
  const std::uint64_t bucket = bucket_of(ref.at);
  if (bucket <= cur_bucket_) {
    // At or before the bucket being drained (the window may have advanced
    // past a newly scheduled now-ish event while hunting for the minimum):
    // the drain heap orders it exactly.
    current_.push_back(ref);
    std::push_heap(current_.begin(), current_.end(), Later{});
  } else if (bucket - cur_bucket_ < kBuckets) {
    ring_[bucket % kBuckets].push_back(ref);
    ++ring_count_;
  } else {
    overflow_.push_back(ref);
    overflow_min_bucket_ = std::min(overflow_min_bucket_, bucket);
    ++stats_.overflow_spills;
  }
  ++size_;
  ++stats_.pushed;
  if (size_ > stats_.pending_high_watermark) {
    stats_.pending_high_watermark = size_;
  }
}

void EventQueue::ensure_current() {
  assert(size_ > 0);
  while (current_.empty()) {
    if (ring_count_ == 0) {
      redistribute_overflow();
      continue;
    }
    // An overflow event becomes ring-eligible once the window has advanced
    // within kBuckets of it; it must join the ring before the scan passes
    // its slot, or it would execute after nearer-but-later events.
    if (!overflow_.empty() &&
        overflow_min_bucket_ - cur_bucket_ < kBuckets) {
      migrate_overflow();
    }
    ++cur_bucket_;
    auto& slot = ring_[cur_bucket_ % kBuckets];
    if (!slot.empty()) {
      ring_count_ -= slot.size();
      current_.swap(slot);  // slot inherits current_'s empty capacity
      std::make_heap(current_.begin(), current_.end(), Later{});
    }
  }
}

// Move every overflow event that now fits the ring window into its slot.
// Overflow buckets are strictly greater than cur_bucket_ (events spill only
// when beyond the window, and the window never moves past them unmigrated),
// so the unsigned distance test is exact.
void EventQueue::migrate_overflow() {
  std::vector<Ref> keep;
  std::uint64_t new_min = no_overflow_min;
  for (const Ref& ref : overflow_) {
    const std::uint64_t bucket = bucket_of(ref.at);
    if (bucket - cur_bucket_ < kBuckets) {
      ring_[bucket % kBuckets].push_back(ref);
      ++ring_count_;
    } else {
      new_min = std::min(new_min, bucket);
      keep.push_back(ref);
    }
  }
  overflow_.swap(keep);
  overflow_min_bucket_ = new_min;
}

void EventQueue::redistribute_overflow() {
  assert(!overflow_.empty());
  ++stats_.window_rebuilds;

  TimePs min_at = overflow_.front().at;
  TimePs max_at = min_at;
  for (const Ref& ref : overflow_) {
    min_at = std::min(min_at, ref.at);
    max_at = std::max(max_at, ref.at);
  }
  // Sparse horizon: when the remaining events span far more than one
  // window, widen the buckets (every live event is in overflow_ right now,
  // so remapping is safe). Each rebuild at most doubles the shift deficit
  // away, capped well below the point where `at >> shift` degenerates.
  while (width_shift_ < 48 &&
         (static_cast<std::uint64_t>(max_at - min_at) >> width_shift_) >=
             kBuckets * 4) {
    ++width_shift_;
  }

  cur_bucket_ = bucket_of(min_at);
  std::vector<Ref> keep;
  std::uint64_t new_min = no_overflow_min;
  for (const Ref& ref : overflow_) {
    const std::uint64_t bucket = bucket_of(ref.at);
    if (bucket == cur_bucket_) {
      current_.push_back(ref);
    } else if (bucket - cur_bucket_ < kBuckets) {
      ring_[bucket % kBuckets].push_back(ref);
      ++ring_count_;
    } else {
      new_min = std::min(new_min, bucket);
      keep.push_back(ref);
    }
  }
  overflow_.swap(keep);
  overflow_min_bucket_ = new_min;
  std::make_heap(current_.begin(), current_.end(), Later{});
}

TimePs EventQueue::min_time() {
  ensure_current();
  return current_.front().at;
}

EventQueue::Popped EventQueue::pop() {
  ensure_current();
  std::pop_heap(current_.begin(), current_.end(), Later{});
  const Ref ref = current_.back();
  current_.pop_back();
  --size_;
  return Popped{this, ref.node, ref.at};
}

void EventQueue::Popped::invoke() {
  node_->invoke(node_->storage);
  node_->destroy(node_->storage);
  node_->destroy = nullptr;
}

EventQueue::Popped::~Popped() {
  if (node_ == nullptr) return;
  if (node_->destroy != nullptr) node_->destroy(node_->storage);
  queue_->release_node(node_);
}

}  // namespace flexsfp::sim
