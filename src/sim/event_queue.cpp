#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace flexsfp::sim {

EventQueue::EventQueue() : ring_(kBuckets) { batch_.reserve(64); }

EventQueue::~EventQueue() {
  // Destroy every pending closure; node memory is slab-owned.
  destroy_pending(current_);
  for (auto& slot : ring_) destroy_pending(slot);
  destroy_pending(overflow_);
}

void EventQueue::destroy_pending(std::vector<Ref>& refs) {
  for (const Ref& ref : refs) {
    if (ref.node->destroy != nullptr) ref.node->destroy(ref.node->storage);
  }
  refs.clear();
}

EventQueue::Node* EventQueue::acquire_node() {
  if (free_nodes_ == nullptr) {
    auto slab = std::make_unique<Node[]>(kSlabNodes);
    for (std::size_t i = 0; i < kSlabNodes; ++i) {
      slab[i].next_free = free_nodes_;
      free_nodes_ = &slab[i];
    }
    slabs_.push_back(std::move(slab));
    ++stats_.slabs_allocated;
  }
  Node* node = free_nodes_;
  free_nodes_ = node->next_free;
  return node;
}

void EventQueue::release_node(Node* node) {
  node->invoke = nullptr;
  node->destroy = nullptr;
  node->next_free = free_nodes_;
  free_nodes_ = node;
}

void EventQueue::insert(const Ref& ref) {
  const std::uint64_t bucket = bucket_of(ref.at);
  if (bucket <= cur_bucket_) {
    // At or before the bucket being drained (the window may have advanced
    // past a newly scheduled now-ish event while hunting for the minimum):
    // the drain heap orders it exactly.
    current_.push_back(ref);
    std::push_heap(current_.begin(), current_.end(), Later{});
  } else if (bucket - cur_bucket_ < kBuckets) {
    ring_[bucket % kBuckets].push_back(ref);
    ++ring_count_;
    mark_slot(bucket);
  } else {
    overflow_.push_back(ref);
    overflow_min_bucket_ = std::min(overflow_min_bucket_, bucket);
    ++stats_.overflow_spills;
  }
  ++size_;
  ++stats_.pushed;
  if (size_ > stats_.pending_high_watermark) {
    stats_.pending_high_watermark = size_;
  }
}

void EventQueue::ensure_current() {
  assert(size_ > 0);
  while (current_.empty()) {
    if (ring_count_ == 0) {
      redistribute_overflow();
      continue;
    }
    const std::size_t d = next_occupied_distance();
    // An overflow event becomes ring-eligible once the window has advanced
    // within kBuckets of it; it must join the ring before the scan passes
    // its slot, or it would execute after nearer-but-later events. The
    // one-slot-at-a-time scan migrated at the first window position with
    // overflow_min - cur < kBuckets; a jump over d slots must stop at that
    // same trigger position when it falls inside the jump.
    if (!overflow_.empty()) {
      const std::uint64_t trigger = overflow_min_bucket_ - kBuckets + 1;
      if (cur_bucket_ + d > trigger) {
        cur_bucket_ = std::max(cur_bucket_, trigger);
        migrate_overflow();
        continue;  // migrated events may occupy nearer slots: rescan
      }
    }
    cur_bucket_ += d;
    auto& slot = ring_[cur_bucket_ % kBuckets];
    ring_count_ -= slot.size();
    clear_slot(cur_bucket_);
    current_.swap(slot);  // slot inherits current_'s empty capacity
    std::make_heap(current_.begin(), current_.end(), Later{});
  }
}

std::size_t EventQueue::next_occupied_distance() const {
  constexpr std::size_t kWords = kBuckets / 64;
  const std::size_t pos = cur_bucket_ % kBuckets;
  const std::size_t start = (pos + 1) % kBuckets;
  // First word is masked to bits >= start; then whole words, wrapping once
  // past the first word so bits below start%64 are seen last. Every ring
  // event is within kBuckets-1 buckets of cur_bucket_ (insert spills the
  // rest to overflow_), so the first set bit in ring order is the target.
  std::size_t word = start / 64;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start % 64));
  for (std::size_t i = 0; i <= kWords; ++i) {
    if (bits != 0) {
      const std::size_t slot =
          word * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      return (slot + kBuckets - pos - 1) % kBuckets + 1;
    }
    word = (word + 1) % kWords;
    bits = occupied_[word];
  }
  assert(false && "ring_count_ > 0 but occupancy bitmap is empty");
  return 1;
}

// Move every overflow event that now fits the ring window into its slot.
// Overflow buckets are strictly greater than cur_bucket_ (events spill only
// when beyond the window, and the window never moves past them unmigrated),
// so the unsigned distance test is exact.
void EventQueue::migrate_overflow() {
  std::vector<Ref> keep;
  std::uint64_t new_min = no_overflow_min;
  for (const Ref& ref : overflow_) {
    const std::uint64_t bucket = bucket_of(ref.at);
    if (bucket - cur_bucket_ < kBuckets) {
      ring_[bucket % kBuckets].push_back(ref);
      ++ring_count_;
      mark_slot(bucket);
    } else {
      new_min = std::min(new_min, bucket);
      keep.push_back(ref);
    }
  }
  overflow_.swap(keep);
  overflow_min_bucket_ = new_min;
}

void EventQueue::redistribute_overflow() {
  assert(!overflow_.empty());
  ++stats_.window_rebuilds;

  TimePs min_at = overflow_.front().at;
  TimePs max_at = min_at;
  for (const Ref& ref : overflow_) {
    min_at = std::min(min_at, ref.at);
    max_at = std::max(max_at, ref.at);
  }
  // Sparse horizon: when the remaining events span far more than one
  // window, widen the buckets (every live event is in overflow_ right now,
  // so remapping is safe). Each rebuild at most doubles the shift deficit
  // away, capped well below the point where `at >> shift` degenerates.
  while (width_shift_ < 48 &&
         (static_cast<std::uint64_t>(max_at - min_at) >> width_shift_) >=
             kBuckets * 4) {
    ++width_shift_;
  }

  cur_bucket_ = bucket_of(min_at);
  std::vector<Ref> keep;
  std::uint64_t new_min = no_overflow_min;
  for (const Ref& ref : overflow_) {
    const std::uint64_t bucket = bucket_of(ref.at);
    if (bucket == cur_bucket_) {
      current_.push_back(ref);
    } else if (bucket - cur_bucket_ < kBuckets) {
      ring_[bucket % kBuckets].push_back(ref);
      ++ring_count_;
      mark_slot(bucket);
    } else {
      new_min = std::min(new_min, bucket);
      keep.push_back(ref);
    }
  }
  overflow_.swap(keep);
  overflow_min_bucket_ = new_min;
  std::make_heap(current_.begin(), current_.end(), Later{});
}

TimePs EventQueue::min_time() {
  ensure_current();
  return current_.front().at;
}

std::size_t EventQueue::drain_front(std::size_t max_events) {
  ensure_current();
  const TimePs at = current_.front().at;
  // Same-time events always share the current bucket (same `at` ⇒ same
  // bucket index), so the whole frontier is in current_ — pre-pop it before
  // invoking anything. Closures invoked below can only schedule events with
  // larger seqs, which sort after every pre-popped ref, so this order is
  // exactly the scalar pop-per-event order.
  batch_.clear();
  while (batch_.size() < max_events && !current_.empty() &&
         current_.front().at == at) {
    std::pop_heap(current_.begin(), current_.end(), Later{});
    batch_.push_back(current_.back());
    current_.pop_back();
  }
  // Mirror the scalar pop()/invoke()/~Popped cadence per event: size_ drops
  // just before the invoke and the node rejoins the free list just after,
  // so watermark and slab-allocation trajectories stay bit-identical.
  std::size_t i = 0;
  try {
    for (; i < batch_.size(); ++i) {
      Node* node = batch_[i].node;
      --size_;
      node->invoke(node->storage);
      node->destroy(node->storage);
      node->destroy = nullptr;
      release_node(node);
    }
  } catch (...) {
    // size_ was already decremented for the throwing event; consume it
    // (destroy + release) exactly as ~Popped would have.
    Node* node = batch_[i].node;
    if (node->destroy != nullptr) node->destroy(node->storage);
    release_node(node);
    ++i;
    // Events never invoked go back on the heap; their size_ share was
    // never decremented.
    for (; i < batch_.size(); ++i) {
      current_.push_back(batch_[i]);
      std::push_heap(current_.begin(), current_.end(), Later{});
    }
    batch_.clear();
    throw;
  }
  const std::size_t invoked = batch_.size();
  batch_.clear();
  return invoked;
}

EventQueue::Popped EventQueue::pop() {
  ensure_current();
  std::pop_heap(current_.begin(), current_.end(), Later{});
  const Ref ref = current_.back();
  current_.pop_back();
  --size_;
  return Popped{this, ref.node, ref.at};
}

void EventQueue::Popped::invoke() {
  node_->invoke(node_->storage);
  node_->destroy(node_->storage);
  node_->destroy = nullptr;
}

EventQueue::Popped::~Popped() {
  if (node_ == nullptr) return;
  if (node_->destroy != nullptr) node_->destroy(node_->storage);
  queue_->release_node(node_);
}

}  // namespace flexsfp::sim
