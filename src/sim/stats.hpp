// Measurement primitives: counters, byte/packet meters and a log-bucketed
// latency histogram with percentile queries.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace flexsfp::sim {

/// Packets + bytes observed, with derived rates over a given span.
///
/// Dual-mode: a meter starts as a plain local tally (merge accumulators in
/// sim::Stats stay value types), and live datapath instances bind() to the
/// run's MetricRegistry so their counts are `<name>.packets` /
/// `<name>.bytes` series there — the registry is then the single tally and
/// every read goes through it. Don't record() through two copies of a bound
/// meter: they share the same series.
class TrafficMeter {
 public:
  TrafficMeter() = default;

  /// Back this meter by registry series; pre-bind counts carry over.
  void bind(obs::MetricRegistry& registry, const std::string& name,
            obs::Labels labels = {}) {
    registry_ = &registry;
    packets_id_ = registry.counter(name + ".packets", labels);
    bytes_id_ = registry.counter(name + ".bytes", std::move(labels));
    registry.add(packets_id_, packets_);
    registry.add(bytes_id_, bytes_);
    packets_ = bytes_ = 0;
  }
  [[nodiscard]] bool bound() const { return registry_ != nullptr; }

  void record(std::size_t bytes) { accumulate(1, bytes); }

  [[nodiscard]] std::uint64_t packets() const {
    return registry_ != nullptr ? registry_->value(packets_id_) : packets_;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return registry_ != nullptr ? registry_->value(bytes_id_) : bytes_;
  }
  /// Average bit rate over `span` (payload bits, no wire overhead).
  [[nodiscard]] double bits_per_second(TimePs span) const {
    return span > 0 ? double(bytes()) * 8.0 / to_seconds(span) : 0.0;
  }
  [[nodiscard]] double packets_per_second(TimePs span) const {
    return span > 0 ? double(packets()) / to_seconds(span) : 0.0;
  }
  /// Fold raw counts in — the shard-merge and bind-carry primitive.
  void accumulate(std::uint64_t packets, std::uint64_t bytes) {
    if (registry_ != nullptr) {
      registry_->add(packets_id_, packets);
      registry_->add(bytes_id_, bytes);
    } else {
      packets_ += packets;
      bytes_ += bytes;
    }
  }
  /// Fold another meter in (shard merge). Order-independent.
  void merge(const TrafficMeter& other) {
    accumulate(other.packets(), other.bytes());
  }
  void reset() {
    if (registry_ != nullptr) {
      registry_->zero(packets_id_);
      registry_->zero(bytes_id_);
    }
    packets_ = 0;
    bytes_ = 0;
  }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  obs::MetricRegistry* registry_ = nullptr;
  obs::MetricId packets_id_;
  obs::MetricId bytes_id_;
};

/// Latency histogram: geometric buckets from 1 ns to ~17 ms, 16 buckets per
/// octave, ~4% relative resolution — plenty for datapath latencies while
/// staying allocation-free after construction.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(TimePs latency);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] TimePs min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] TimePs max() const { return max_; }
  [[nodiscard]] double mean_ns() const {
    return count_ > 0 ? sum_ns_ / double(count_) : 0.0;
  }
  /// Percentile in [0, 100]; returns the representative value of the bucket
  /// containing the requested rank.
  [[nodiscard]] TimePs percentile(double p) const;
  [[nodiscard]] std::string summary() const;
  /// Fold another histogram in (shard merge): buckets add element-wise, so
  /// percentiles of the merge equal percentiles of the union of samples.
  /// Merge shards in a fixed order when bit-identical means are required —
  /// sum_ns_ is floating point and addition is not associative.
  void merge(const LatencyHistogram& other);
  void reset();

 private:
  [[nodiscard]] std::size_t bucket_for(TimePs latency) const;
  [[nodiscard]] TimePs bucket_value(std::size_t index) const;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ns_ = 0;
  TimePs min_ = 0;
  TimePs max_ = 0;
  // One-entry memo over bucket_for: identical latencies arrive in long runs
  // (fixed-size sweeps traverse the same service chain), and bucket_for
  // costs a log2 per call.
  TimePs last_latency_ = -1;
  std::size_t last_bucket_ = 0;
};

/// The canonical mergeable bundle of run statistics: everything a testbed
/// shard measures, foldable across shards at a barrier so a parallel run
/// reports exactly what the sequential run would.
struct Stats {
  TrafficMeter sent;
  TrafficMeter received;
  LatencyHistogram latency;
  std::uint64_t queue_drops = 0;  // engine ingress FIFO overflows
  std::uint64_t app_drops = 0;    // Verdict::drop from the app
  std::uint64_t dark_drops = 0;   // lost while booting/rebooting/failed
  std::uint64_t events = 0;       // simulation events executed

  /// Fold `other` in. Counter fields are order-independent; latency means
  /// are bit-identical only when shards merge in a fixed order (see
  /// LatencyHistogram::merge).
  void merge(const Stats& other);

  [[nodiscard]] std::uint64_t total_drops() const {
    return queue_drops + app_drops + dark_drops;
  }
  [[nodiscard]] double loss_rate() const {
    return sent.packets() > 0
               ? 1.0 - double(received.packets()) / double(sent.packets())
               : 0.0;
  }
};

/// Sliding-window rate estimator used by the microburst detector: counts
/// bytes in fixed windows and reports the previous window's rate.
class WindowedRate {
 public:
  explicit WindowedRate(TimePs window) : window_(window) {}

  void record(TimePs now, std::size_t bytes);
  /// Rate of the most recently *completed* window, bits/second.
  [[nodiscard]] double last_window_bps() const { return last_bps_; }
  /// Highest completed-window rate seen so far.
  [[nodiscard]] double peak_bps() const { return peak_bps_; }
  [[nodiscard]] TimePs window() const { return window_; }

 private:
  void roll(TimePs now);

  TimePs window_;
  TimePs window_start_ = 0;
  std::uint64_t window_bytes_ = 0;
  double last_bps_ = 0.0;
  double peak_bps_ = 0.0;
};

}  // namespace flexsfp::sim
