// Owner-keepalive guard for scheduled closures that capture `this`.
//
// Components schedule lambdas like `[this, packet] { finish(packet); }`
// into their Simulation. If the component is destroyed while the event is
// still pending — a module torn down mid-service by the fault_ppe()/golden
// reimage path, or a testbed dismantled before its queue drained — the
// closure fires on a dangling pointer. A Lifetime member plus a copied
// LifetimeToken in every such closure turns that into a checked no-op: the
// token keeps an 8-byte shared State alive, the owner's destructor flips
// `alive` off, and the closure bails out before touching the owner.
//
// The refcount is deliberately non-atomic: a Simulation (and everything
// scheduled into it) is single-threaded by construction — shard-parallel
// runs give each shard its own Simulation — so tokens never cross threads.
#pragma once

#include <cstdint>

namespace flexsfp::sim {

class LifetimeToken;

class Lifetime {
 public:
  Lifetime() : state_(new State{1, true}) {}
  ~Lifetime() {
    state_->alive = false;
    release(state_);
  }
  Lifetime(const Lifetime&) = delete;
  Lifetime& operator=(const Lifetime&) = delete;

  /// A copyable 8-byte witness of this owner's liveness, for capture in
  /// scheduled closures.
  [[nodiscard]] LifetimeToken token() const;

 private:
  friend class LifetimeToken;
  struct State {
    std::uint32_t refs;
    bool alive;
  };
  static void release(State* state) {
    if (--state->refs == 0) delete state;
  }
  State* state_;
};

class LifetimeToken {
 public:
  LifetimeToken(const LifetimeToken& other) : state_(other.state_) {
    ++state_->refs;
  }
  LifetimeToken(LifetimeToken&& other) noexcept : state_(other.state_) {
    ++state_->refs;  // moved-from tokens stay valid (trivially copyable use)
  }
  LifetimeToken& operator=(const LifetimeToken& other) {
    ++other.state_->refs;
    Lifetime::release(state_);
    state_ = other.state_;
    return *this;
  }
  LifetimeToken& operator=(LifetimeToken&& other) noexcept {
    return *this = static_cast<const LifetimeToken&>(other);
  }
  ~LifetimeToken() { Lifetime::release(state_); }

  /// True until the owning Lifetime is destroyed.
  [[nodiscard]] bool alive() const { return state_->alive; }

 private:
  friend class Lifetime;
  explicit LifetimeToken(Lifetime::State* state) : state_(state) {
    ++state_->refs;
  }
  Lifetime::State* state_;
};

inline LifetimeToken Lifetime::token() const { return LifetimeToken{state_}; }

}  // namespace flexsfp::sim
