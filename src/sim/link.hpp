// Point-to-point link and queued-server building blocks.
#pragma once

#include <string>
#include <vector>

#include "sim/lifetime.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace flexsfp::sim {

/// A unidirectional serial link: packets occupy the wire for
/// wire_size() / rate, then arrive after the propagation delay. Back-to-back
/// sends queue behind the transmitter (infinite TX buffer: sources that need
/// loss behaviour put a BoundedQueue in front).
class Link final : public PacketHandler {
 public:
  Link(Simulation& sim, DataRate rate, TimePs propagation_delay,
       PacketHandler& destination, std::string name = "link");

  void handle_packet(net::PacketPtr packet) override;

  [[nodiscard]] DataRate rate() const { return rate_; }
  /// Goodput (payload frame bytes), series `link.traffic{link=<name>}`.
  [[nodiscard]] const TrafficMeter& meter() const { return meter_; }
  /// Wire bytes (frame + preamble/IFG overhead) — the unit busy_ps and
  /// utilization() are computed in, series `link.wire{link=<name>}`. Kept as
  /// a separate series so goodput and occupancy never mix units.
  [[nodiscard]] const TrafficMeter& wire_meter() const { return wire_meter_; }
  /// Total time the transmitter was busy — utilization = busy / elapsed.
  /// Reads the registry series `link.busy_ps{link=<name>}`.
  [[nodiscard]] TimePs busy_time() const {
    return TimePs(sim_.metrics().value(busy_id_));
  }
  [[nodiscard]] double utilization(TimePs elapsed) const {
    return elapsed > 0 ? double(busy_time()) / double(elapsed) : 0.0;
  }
  /// Registry-unique instance name ("link", "link1", ... for defaults).
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Simulation& sim_;
  DataRate rate_;
  SerializationTimer ser_{rate_};
  TimePs propagation_delay_;
  PacketHandler& destination_;
  std::string name_;
  TimePs next_free_ = 0;
  TrafficMeter meter_;
  TrafficMeter wire_meter_;
  obs::MetricId busy_id_;
  std::uint16_t flight_stage_ = 0;
  Lifetime lifetime_;
};

/// Drop-tail FIFO with a packet-count bound, as found in front of every
/// store-and-forward element. Pure container: the owner drives dequeue.
///
/// Backed by a power-of-two ring that doubles on demand and never shrinks:
/// once the ring reaches the queue's working depth, push/pop cycle through
/// preallocated slots with no allocator traffic (std::deque re-allocates a
/// chunk every time the queue drains across a chunk boundary, which showed
/// up as steady-state churn in the hot-path allocation audit).
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False (and counted as a drop) when full.
  bool push(net::PacketPtr packet);
  [[nodiscard]] net::PacketPtr pop();
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  // Depth high-watermark bookkeeping lives with the owner's registry gauge
  // (`server.queue_high_watermark`), the single source of truth — a shadow
  // counter here could silently disagree with it.

 private:
  void grow();

  std::size_t capacity_;
  std::vector<net::PacketPtr> slots_;  // power-of-two ring, grown on demand
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t drops_ = 0;
};

/// An M/G/1-style service element: arriving packets wait in a bounded FIFO,
/// are served one at a time for `service_time(packet)`, then handed to
/// `finish`. This is the execution model of the Packet Processing Engine:
/// the service time is the packet's cycle budget on the PPE clock.
class QueuedServer : public PacketHandler {
 public:
  /// `stage` names this service element in the registry (uniquified per
  /// simulation: "ppe", "ppe1", ...) and in the flight recorder. Its series:
  /// server.queue_drops / server.busy_ps / server.queue_high_watermark /
  /// server.served.{packets,bytes}, all labeled {stage=<name>}.
  QueuedServer(Simulation& sim, std::size_t queue_capacity,
               std::string stage = "server");

  void handle_packet(net::PacketPtr packet) final;

  [[nodiscard]] std::uint64_t drops() const {
    return sim_.metrics().value(drops_id_);
  }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t queue_high_watermark() const {
    return static_cast<std::size_t>(sim_.metrics().value(watermark_id_));
  }
  [[nodiscard]] TimePs busy_time() const {
    return TimePs(sim_.metrics().value(busy_id_));
  }
  [[nodiscard]] double utilization(TimePs elapsed) const {
    return elapsed > 0 ? double(busy_time()) / double(elapsed) : 0.0;
  }
  [[nodiscard]] const TrafficMeter& served() const { return served_; }
  /// Registry-unique stage name this server reports under.
  [[nodiscard]] const std::string& stage_name() const { return stage_; }

 protected:
  [[nodiscard]] Simulation& sim() { return sim_; }
  [[nodiscard]] const Simulation& sim() const { return sim_; }
  /// Flight-recorder stage id, for subclasses recording their own hops
  /// (verdicts, egress) under the same stage name.
  [[nodiscard]] std::uint16_t flight_stage() const { return flight_stage_; }
  /// Liveness witness for subclasses scheduling their own `this`-capturing
  /// closures (Engine verdict drains, arbiter egress) — same guard as the
  /// service-completion event.
  [[nodiscard]] LifetimeToken lifetime_token() const {
    return lifetime_.token();
  }
  /// How long this packet occupies the server.
  [[nodiscard]] virtual TimePs service_time(const net::Packet& packet) = 0;
  /// Invoked at service completion; implementations forward, drop, etc.
  virtual void finish(net::PacketPtr packet) = 0;

 private:
  void start_service();

  Simulation& sim_;
  BoundedQueue queue_;
  bool busy_ = false;
  TrafficMeter served_;
  std::string stage_;
  obs::MetricId drops_id_;
  obs::MetricId busy_id_;
  obs::MetricId watermark_id_;
  std::uint16_t flight_stage_ = 0;
  Lifetime lifetime_;
};

}  // namespace flexsfp::sim
