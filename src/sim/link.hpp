// Point-to-point link and queued-server building blocks.
#pragma once

#include <deque>
#include <string>

#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace flexsfp::sim {

/// A unidirectional serial link: packets occupy the wire for
/// wire_size() / rate, then arrive after the propagation delay. Back-to-back
/// sends queue behind the transmitter (infinite TX buffer: sources that need
/// loss behaviour put a BoundedQueue in front).
class Link final : public PacketHandler {
 public:
  Link(Simulation& sim, DataRate rate, TimePs propagation_delay,
       PacketHandler& destination, std::string name = "link");

  void handle_packet(net::PacketPtr packet) override;

  [[nodiscard]] DataRate rate() const { return rate_; }
  [[nodiscard]] const TrafficMeter& meter() const { return meter_; }
  /// Total time the transmitter was busy — utilization = busy / elapsed.
  [[nodiscard]] TimePs busy_time() const { return busy_time_; }
  [[nodiscard]] double utilization(TimePs elapsed) const {
    return elapsed > 0 ? double(busy_time_) / double(elapsed) : 0.0;
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Simulation& sim_;
  DataRate rate_;
  TimePs propagation_delay_;
  PacketHandler& destination_;
  std::string name_;
  TimePs next_free_ = 0;
  TimePs busy_time_ = 0;
  TrafficMeter meter_;
};

/// Drop-tail FIFO with a packet-count bound, as found in front of every
/// store-and-forward element. Pure container: the owner drives dequeue.
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False (and counted as a drop) when full.
  bool push(net::PacketPtr packet);
  [[nodiscard]] net::PacketPtr pop();
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::size_t high_watermark() const { return high_watermark_; }

 private:
  std::size_t capacity_;
  std::deque<net::PacketPtr> queue_;
  std::uint64_t drops_ = 0;
  std::size_t high_watermark_ = 0;
};

/// An M/G/1-style service element: arriving packets wait in a bounded FIFO,
/// are served one at a time for `service_time(packet)`, then handed to
/// `finish`. This is the execution model of the Packet Processing Engine:
/// the service time is the packet's cycle budget on the PPE clock.
class QueuedServer : public PacketHandler {
 public:
  QueuedServer(Simulation& sim, std::size_t queue_capacity)
      : sim_(sim), queue_(queue_capacity) {}

  void handle_packet(net::PacketPtr packet) final;

  [[nodiscard]] std::uint64_t drops() const { return queue_.drops(); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t queue_high_watermark() const {
    return queue_.high_watermark();
  }
  [[nodiscard]] TimePs busy_time() const { return busy_time_; }
  [[nodiscard]] double utilization(TimePs elapsed) const {
    return elapsed > 0 ? double(busy_time_) / double(elapsed) : 0.0;
  }
  [[nodiscard]] const TrafficMeter& served() const { return served_; }

 protected:
  [[nodiscard]] Simulation& sim() { return sim_; }
  /// How long this packet occupies the server.
  [[nodiscard]] virtual TimePs service_time(const net::Packet& packet) = 0;
  /// Invoked at service completion; implementations forward, drop, etc.
  virtual void finish(net::PacketPtr packet) = 0;

 private:
  void start_service();

  Simulation& sim_;
  BoundedQueue queue_;
  bool busy_ = false;
  TimePs busy_time_ = 0;
  TrafficMeter served_;
};

}  // namespace flexsfp::sim
