// Deterministic fan-out for shard-parallel experiments.
//
// Shards in this codebase share no state (one FlexSFP module per shard, one
// Simulation each), so parallelism is embarrassingly simple: run each
// shard's closure on some worker thread, join, then merge results *by shard
// index* on the caller thread. Scheduling order affects only wall-clock
// time, never results.
#pragma once

#include <cstddef>
#include <functional>

namespace flexsfp::sim {

/// Run `body(0) .. body(jobs-1)`, each exactly once, on up to `workers`
/// threads. `workers <= 1` runs everything on the caller thread in index
/// order — the sequential oracle. Jobs must not share mutable state.
/// Exceptions thrown by a job are rethrown on the caller thread after all
/// workers join (the first one, by shard index).
void parallel_for_each_shard(std::size_t jobs, unsigned workers,
                             const std::function<void(std::size_t)>& body);

/// Worker count actually used for a request: 0 means "one per job, capped
/// by the hardware"; anything else is capped by the job count.
[[nodiscard]] unsigned resolve_workers(std::size_t jobs, unsigned requested);

}  // namespace flexsfp::sim
