// Deterministic fan-out for shard-parallel experiments.
//
// Two execution shapes share the same worker-pool discipline:
//
//   * parallel_for_each_shard — shards share no state at all (one FlexSFP
//     module per shard, one Simulation each): run each shard's closure on
//     some worker thread, join once, merge by shard index on the caller
//     thread. Scheduling order affects only wall-clock time, never results.
//   * run_lockstep_rounds — shards exchange timestamped packets through a
//     fabric: they advance in bounded time windows (conservative
//     synchronization, the link propagation delay is the lookahead) and
//     meet at a barrier after every window, where the caller's exchange
//     step moves the boundary batches. Worker count still never affects
//     results: all cross-shard mutation happens in the single-threaded
//     exchange step.
#pragma once

#include <cstddef>
#include <functional>

namespace flexsfp::sim {

/// Run `body(0) .. body(jobs-1)`, each exactly once, on up to `workers`
/// threads. `workers <= 1` runs everything on the caller thread in index
/// order — the sequential oracle. Jobs must not share mutable state.
/// Exceptions thrown by a job are rethrown on the caller thread after all
/// workers join (the first one, by shard index).
void parallel_for_each_shard(std::size_t jobs, unsigned workers,
                             const std::function<void(std::size_t)>& body);

/// Lockstep round engine for conservatively synchronized shards. Rounds
/// alternate two phases until `exchange` says stop:
///
///   1. advance — `advance(0) .. advance(jobs-1)`, each exactly once,
///      spread over up to `workers` threads (same contract as
///      parallel_for_each_shard: advance bodies share no mutable state).
///   2. exchange — `exchange()` runs on the caller thread while every
///      worker is parked at the barrier; this is the only place cross-shard
///      state may be touched. Return true to run another round.
///
/// Worker threads persist across rounds (a generation barrier, not a
/// thread-per-round join), so a run of many small windows pays thread
/// start-up once. Exceptions from advance bodies skip the round's exchange
/// and are rethrown on the caller thread (lowest shard index first).
void run_lockstep_rounds(std::size_t jobs, unsigned workers,
                         const std::function<void(std::size_t)>& advance,
                         const std::function<bool()>& exchange);

/// Worker count a request resolves to for *capacity* reasoning: 0 means
/// "one per job, capped by the hardware"; anything else is capped by the
/// job count (display/planning semantics — see resolve_threads for what is
/// actually spawned).
[[nodiscard]] unsigned resolve_workers(std::size_t jobs, unsigned requested);

/// Worker threads actually spawned for a request: resolve_workers()
/// additionally capped at the hardware thread count. Explicitly requesting
/// more workers than the machine has used to oversubscribe — on a small
/// host the context-switch thrash made workers=4 *slower* than sequential —
/// and since shard results never depend on the thread count, capping is
/// pure win.
[[nodiscard]] unsigned resolve_threads(std::size_t jobs, unsigned requested);

}  // namespace flexsfp::sim
