// Simulation time base and data-rate arithmetic.
//
// Time is a signed 64-bit picosecond count: fine enough to resolve a single
// 156.25 MHz clock cycle (6400 ps) and a 64-byte frame at 10 Gb/s (67.2 ns),
// wide enough for > 100 days of simulated time.
#pragma once

#include <cstdint>
#include <string>

namespace flexsfp::sim {

using TimePs = std::int64_t;

constexpr TimePs operator""_ps(unsigned long long v) {
  return static_cast<TimePs>(v);
}
constexpr TimePs operator""_ns(unsigned long long v) {
  return static_cast<TimePs>(v) * 1000;
}
constexpr TimePs operator""_us(unsigned long long v) {
  return static_cast<TimePs>(v) * 1000 * 1000;
}
constexpr TimePs operator""_ms(unsigned long long v) {
  return static_cast<TimePs>(v) * 1000 * 1000 * 1000;
}
constexpr TimePs operator""_s(unsigned long long v) {
  return static_cast<TimePs>(v) * 1000 * 1000 * 1000 * 1000;
}

/// The last representable instant. schedule_in clamps here instead of
/// wrapping, so "practically forever" timers near the 64-bit horizon stay
/// ordered after every finite event instead of landing in the past.
inline constexpr TimePs time_horizon = INT64_MAX;

/// a + b clamped to [0, time_horizon] — the overflow-safe way to turn a
/// delay into an absolute timestamp. Negative sums clamp to 0 (the
/// simulation epoch); positive overflow clamps to the horizon.
[[nodiscard]] constexpr TimePs saturating_add(TimePs a, TimePs b) {
  TimePs sum = 0;
  if (__builtin_add_overflow(a, b, &sum)) {
    return b > 0 ? time_horizon : 0;
  }
  return sum < 0 ? 0 : sum;
}

[[nodiscard]] constexpr double to_seconds(TimePs t) { return double(t) * 1e-12; }
[[nodiscard]] constexpr double to_micros(TimePs t) { return double(t) * 1e-6; }
[[nodiscard]] constexpr double to_nanos(TimePs t) { return double(t) * 1e-3; }
[[nodiscard]] constexpr TimePs from_seconds(double s) {
  return static_cast<TimePs>(s * 1e12);
}

/// Human-readable duration ("1.234 us").
[[nodiscard]] std::string format_time(TimePs t);

/// A link or bus data rate.
class DataRate {
 public:
  constexpr DataRate() = default;
  explicit constexpr DataRate(std::uint64_t bits_per_second)
      : bps_(bits_per_second) {}

  [[nodiscard]] static constexpr DataRate gbps(double g) {
    return DataRate{static_cast<std::uint64_t>(g * 1e9)};
  }
  [[nodiscard]] static constexpr DataRate mbps(double m) {
    return DataRate{static_cast<std::uint64_t>(m * 1e6)};
  }

  [[nodiscard]] constexpr std::uint64_t bps() const { return bps_; }
  [[nodiscard]] constexpr double gbps_value() const { return double(bps_) * 1e-9; }

  /// Time to put `bytes` on the wire at this rate.
  [[nodiscard]] constexpr TimePs serialization_time(std::size_t bytes) const {
    // ps = bits * 1e12 / bps. Split into whole seconds-worth and remainder
    // so the arithmetic stays inside 64 bits for any frame size.
    const std::uint64_t bits = std::uint64_t{bytes} * 8;
    const std::uint64_t whole = bits / bps_;
    const std::uint64_t rem = bits % bps_;
    return static_cast<TimePs>(whole * 1000000000000ull +
                               rem * 1000000000000ull / bps_);
  }

  friend constexpr auto operator<=>(const DataRate&, const DataRate&) = default;

 private:
  std::uint64_t bps_ = 0;
};

/// 10GBASE-R line rate (payload data rate of an SFP+ lane).
inline constexpr DataRate line_rate_10g{10'000'000'000ull};

/// One-entry memo over DataRate::serialization_time. The divide pair in
/// serialization_time is hot-path arithmetic that runs once per packet per
/// transmitting element, and packet sizes repeat heavily (fixed-size
/// sweeps, the 3-point IMIX mix), so remembering the last size answers
/// almost every call. Exact: a miss recomputes with the same integer math.
class SerializationTimer {
 public:
  constexpr SerializationTimer() = default;
  explicit constexpr SerializationTimer(DataRate rate) : rate_(rate) {}

  [[nodiscard]] TimePs operator()(std::size_t bytes) {
    if (bytes != last_bytes_) {
      last_bytes_ = bytes;
      last_ps_ = rate_.serialization_time(bytes);
    }
    return last_ps_;
  }

  [[nodiscard]] constexpr DataRate rate() const { return rate_; }

 private:
  DataRate rate_{};
  std::size_t last_bytes_ = ~std::size_t{0};
  TimePs last_ps_ = 0;
};

}  // namespace flexsfp::sim
