#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace flexsfp::sim {

namespace {
// 16 buckets per octave over 24 octaves starting at 1 ns.
constexpr std::size_t buckets_per_octave = 16;
constexpr std::size_t octaves = 24;
constexpr double base_ns = 1.0;
}  // namespace

LatencyHistogram::LatencyHistogram()
    : buckets_(buckets_per_octave * octaves + 1, 0) {}

std::size_t LatencyHistogram::bucket_for(TimePs latency) const {
  const double ns = std::max(to_nanos(latency), base_ns);
  const double octave = std::log2(ns / base_ns);
  const auto index = static_cast<std::size_t>(octave * buckets_per_octave);
  return std::min(index, buckets_.size() - 1);
}

TimePs LatencyHistogram::bucket_value(std::size_t index) const {
  const double ns =
      base_ns * std::pow(2.0, (double(index) + 0.5) / buckets_per_octave);
  return static_cast<TimePs>(ns * 1000.0);
}

void LatencyHistogram::record(TimePs latency) {
  if (count_ == 0 || latency < min_) min_ = latency;
  if (latency > max_) max_ = latency;
  sum_ns_ += to_nanos(latency);
  ++count_;
  if (latency != last_latency_) {
    last_latency_ = latency;
    last_bucket_ = bucket_for(latency);
  }
  ++buckets_[last_bucket_];
}

TimePs LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      std::clamp(p, 0.0, 100.0) / 100.0 * double(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > rank) return bucket_value(i);
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  char buffer[160];
  std::snprintf(buffer, sizeof buffer,
                "n=%llu min=%.1fns p50=%.1fns p99=%.1fns max=%.1fns",
                static_cast<unsigned long long>(count_), to_nanos(min()),
                to_nanos(percentile(50)), to_nanos(percentile(99)),
                to_nanos(max_));
  return buffer;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Stats::merge(const Stats& other) {
  sent.merge(other.sent);
  received.merge(other.received);
  latency.merge(other.latency);
  queue_drops += other.queue_drops;
  app_drops += other.app_drops;
  dark_drops += other.dark_drops;
  events += other.events;
}

void LatencyHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ns_ = 0;
  min_ = 0;
  max_ = 0;
  last_latency_ = -1;
  last_bucket_ = 0;
}

void WindowedRate::record(TimePs now, std::size_t bytes) {
  roll(now);
  window_bytes_ += bytes;
}

void WindowedRate::roll(TimePs now) {
  while (now >= window_start_ + window_) {
    const double bps = double(window_bytes_) * 8.0 / to_seconds(window_);
    last_bps_ = bps;
    peak_bps_ = std::max(peak_bps_, bps);
    window_bytes_ = 0;
    window_start_ += window_;
  }
}

}  // namespace flexsfp::sim
