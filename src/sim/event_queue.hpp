// Allocation-free discrete-event queue: a bucketed calendar structure over
// slab-allocated event nodes with inline closure storage.
//
// The seed implementation was std::priority_queue<Entry> with a
// std::function per event — one malloc per scheduled event (closures with
// captured PacketPtrs never fit libstdc++'s 16-byte SSO) plus O(log n)
// moves of 48-byte entries on every sift. Here an event is a 64-byte node
// carved from a slab and recycled through a free list; callables up to
// kInlineClosure bytes (every closure in this codebase) are constructed
// directly into the node, larger ones fall back to one boxed allocation and
// are counted so the regression gate can see them. Ordering is a calendar:
// near-future events hash into time buckets by `at >> width_shift`, the
// bucket being drained is a small binary min-heap of 24-byte PODs, and
// far-future events wait in an overflow list that is redistributed when the
// window advances (doubling the bucket width when the horizon is sparse).
//
// The tie-break contract is exactly the seed's: events execute in strict
// (time, insertion-order) sequence. (at, seq) is a total order — seq is
// unique — so heap pops are deterministic regardless of heap layout, and
// sequential/sharded runs stay bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace flexsfp::sim {

class EventQueue {
  struct Node;  // slab-allocated event node, defined below

 public:
  /// Closures at most this large (and max_align-compatible) live inside the
  /// event node; anything bigger costs one heap allocation, visible in
  /// stats().boxed_closures.
  static constexpr std::size_t kInlineClosure = 40;

  /// Hot-path tallies, surfaced as sim.queue.* through the registry.
  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t inline_closures = 0;
    std::uint64_t boxed_closures = 0;
    std::uint64_t overflow_spills = 0;   // events parked beyond the window
    std::uint64_t window_rebuilds = 0;   // overflow redistributions
    std::uint64_t slabs_allocated = 0;
    std::uint64_t pending_high_watermark = 0;
  };

  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `fn` at absolute time `at` (must be >= 0; the Simulation
  /// clamps to now() first). Insertion order is remembered for tie-breaks.
  template <class F>
  void push(TimePs at, F&& fn) {
    Node* node = acquire_node();
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineClosure &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(node->storage)) D(std::forward<F>(fn));
      node->invoke = [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); };
      node->destroy = [](void* s) {
        std::launder(reinterpret_cast<D*>(s))->~D();
      };
      ++stats_.inline_closures;
    } else {
      auto boxed = std::make_unique<D>(std::forward<F>(fn));
      ::new (static_cast<void*>(node->storage)) D*(boxed.release());
      node->invoke = [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); };
      node->destroy = [](void* s) {
        delete *std::launder(reinterpret_cast<D**>(s));
      };
      ++stats_.boxed_closures;
    }
    insert(Ref{at, next_seq_++, node});
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Earliest pending (time, seq) event's time. Precondition: !empty().
  /// Non-const: locating the minimum may advance the calendar window.
  [[nodiscard]] TimePs min_time();

  /// One popped event, holding its node until destruction. invoke() runs
  /// and destroys the callable; the destructor returns the node to the
  /// queue's free list either way (exception-safe).
  class Popped {
   public:
    Popped(Popped&& other) noexcept
        : queue_(other.queue_), node_(other.node_), at_(other.at_) {
      other.node_ = nullptr;
    }
    Popped(const Popped&) = delete;
    Popped& operator=(const Popped&) = delete;
    Popped& operator=(Popped&&) = delete;
    ~Popped();

    [[nodiscard]] TimePs at() const { return at_; }
    void invoke();

   private:
    friend class EventQueue;
    Popped(EventQueue* queue, Node* node, TimePs at)
        : queue_(queue), node_(node), at_(at) {}

    EventQueue* queue_;
    Node* node_;
    TimePs at_;
  };

  /// Remove and return the earliest event. Precondition: !empty().
  [[nodiscard]] Popped pop();

  /// Batched drain: pop up to `max_events` events sharing the earliest
  /// pending timestamp and invoke them in (time, seq) order, amortizing the
  /// heap maintenance over the batch. Returns the number invoked.
  /// Precondition: !empty(). The caller must advance its clock to
  /// min_time() first — every invoked event carries exactly that timestamp.
  ///
  /// Exactness: an event scheduled *by* an invoked closure always receives
  /// a larger seq than every pre-popped ref, so even when it lands at the
  /// same timestamp it sorts after the whole batch — the execution order is
  /// bit-identical to `max_events` scalar pop()/invoke() rounds. size_ is
  /// decremented per event (immediately before its invoke) and each node is
  /// released immediately after, so pending_high_watermark and slab-reuse
  /// trajectories match the scalar path exactly as well.
  std::size_t drain_front(std::size_t max_events);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Current bucket width in picoseconds (2^width_shift); observable so
  /// tests can assert the sparse-horizon widening actually engages.
  [[nodiscard]] TimePs bucket_width() const { return TimePs{1} << width_shift_; }

 private:
  struct Node {
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;
    Node* next_free = nullptr;
    alignas(std::max_align_t) unsigned char storage[kInlineClosure];
  };
  /// What the ordering structure moves around: 24 bytes, trivially copyable.
  struct Ref {
    TimePs at;
    std::uint64_t seq;
    Node* node;
  };
  struct Later {
    bool operator()(const Ref& a, const Ref& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  static constexpr std::size_t kBuckets = 256;       // ring size
  static constexpr unsigned kInitialWidthShift = 14;  // 16.4 ns buckets
  static constexpr std::size_t kSlabNodes = 512;

  [[nodiscard]] std::uint64_t bucket_of(TimePs at) const {
    return static_cast<std::uint64_t>(at) >> width_shift_;
  }

  Node* acquire_node();
  void release_node(Node* node);
  void insert(const Ref& ref);
  /// Make current_ hold the earliest pending bucket. Precondition: size_ > 0.
  void ensure_current();
  /// Mark/unmark ring slot `bucket % kBuckets` in the occupancy bitmap.
  void mark_slot(std::uint64_t bucket) {
    occupied_[(bucket % kBuckets) / 64] |=
        std::uint64_t{1} << ((bucket % kBuckets) % 64);
  }
  void clear_slot(std::uint64_t bucket) {
    occupied_[(bucket % kBuckets) / 64] &=
        ~(std::uint64_t{1} << ((bucket % kBuckets) % 64));
  }
  /// Distance (1..kBuckets-1) from cur_bucket_ to the next occupied ring
  /// slot. Precondition: ring_count_ > 0.
  [[nodiscard]] std::size_t next_occupied_distance() const;
  void redistribute_overflow();
  void migrate_overflow();
  void destroy_pending(std::vector<Ref>& refs);

  static constexpr std::uint64_t no_overflow_min = ~std::uint64_t{0};

  std::vector<Ref> current_;  // min-heap (Later) of the bucket being drained
  std::vector<Ref> batch_;    // scratch for drain_front's pre-popped refs
  std::vector<std::vector<Ref>> ring_;  // future buckets, unsorted
  /// One bit per ring slot (set ⇔ slot non-empty), so advancing the window
  /// jumps straight to the next occupied slot instead of stepping through
  /// the empty ones — sparse schedules (events many buckets apart) would
  /// otherwise spend most of the drain loop scanning vacant slots.
  std::uint64_t occupied_[kBuckets / 64] = {};
  std::vector<Ref> overflow_;           // beyond the ring window, unsorted
  std::uint64_t overflow_min_bucket_ = no_overflow_min;
  std::uint64_t cur_bucket_ = 0;        // absolute index of current_'s bucket
  unsigned width_shift_ = kInitialWidthShift;
  std::size_t ring_count_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  Node* free_nodes_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  Stats stats_;
};

}  // namespace flexsfp::sim
