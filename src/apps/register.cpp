#include "apps/register.hpp"

namespace flexsfp::apps {

void link_nat_app();
void link_acl_app();
void link_vlan_app();
void link_tunnel_app();
void link_lb_app();
void link_telemetry_apps();
void link_ratelimit_app();
void link_sanitizer_app();
void link_faultmon_app();
void link_bpf_app();
void link_ipv6_filter_app();
void link_softwire_apps();

void register_builtin_apps() {
  link_nat_app();
  link_acl_app();
  link_vlan_app();
  link_tunnel_app();
  link_lb_app();
  link_telemetry_apps();
  link_ratelimit_app();
  link_sanitizer_app();
  link_faultmon_app();
  link_bpf_app();
  link_ipv6_filter_app();
  link_softwire_apps();
}

}  // namespace flexsfp::apps
