#include "apps/telemetry.hpp"

#include "hw/resource_model.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

// --- shim wire format -------------------------------------------------------

std::optional<TelemetryShim> TelemetryShim::parse(net::BytesView data,
                                                  std::size_t offset) {
  if (offset + size() > data.size()) return std::nullopt;
  TelemetryShim shim;
  shim.device_id = net::read_be16(data, offset);
  shim.ingress_port = data[offset + 2];
  shim.queue_depth = data[offset + 3];
  shim.timestamp_ns = (std::uint64_t{net::read_be16(data, offset + 4)} << 32) |
                      net::read_be32(data, offset + 6);
  shim.inner_ether_type = net::read_be16(data, offset + 10);
  return shim;
}

void TelemetryShim::serialize_to(net::BytesSpan data,
                                 std::size_t offset) const {
  net::write_be16(data, offset, device_id);
  net::write_u8(data, offset + 2, ingress_port);
  net::write_u8(data, offset + 3, queue_depth);
  net::write_be16(data, offset + 4,
                  static_cast<std::uint16_t>((timestamp_ns >> 32) & 0xffff));
  net::write_be32(data, offset + 6,
                  static_cast<std::uint32_t>(timestamp_ns & 0xffffffff));
  net::write_be16(data, offset + 10, inner_ether_type);
}

bool push_telemetry_shim(net::Bytes& frame, const TelemetryShim& shim) {
  auto eth = net::EthernetHeader::parse(frame, 0);
  if (!eth) return false;
  TelemetryShim wire = shim;
  wire.inner_ether_type = eth->ether_type;
  eth->ether_type = telemetry_ether_type;
  frame.insert(frame.begin() + net::EthernetHeader::size(),
               TelemetryShim::size(), 0);
  eth->serialize_to(frame, 0);
  wire.serialize_to(frame, net::EthernetHeader::size());
  return true;
}

std::optional<TelemetryShim> pop_telemetry_shim(net::Bytes& frame) {
  auto eth = net::EthernetHeader::parse(frame, 0);
  if (!eth || eth->ether_type != telemetry_ether_type) return std::nullopt;
  const auto shim = TelemetryShim::parse(frame, net::EthernetHeader::size());
  if (!shim) return std::nullopt;
  eth->ether_type = shim->inner_ether_type;
  frame.erase(frame.begin() + net::EthernetHeader::size(),
              frame.begin() + net::EthernetHeader::size() +
                  TelemetryShim::size());
  eth->serialize_to(frame, 0);
  return shim;
}

// --- IntStamper -------------------------------------------------------------

net::Bytes IntStamperConfig::serialize() const {
  net::Bytes out(3);
  out[0] = static_cast<std::uint8_t>(role);
  net::write_be16(out, 1, device_id);
  return out;
}

std::optional<IntStamperConfig> IntStamperConfig::parse(net::BytesView data) {
  if (data.size() < 3 || data[0] > 1) return std::nullopt;
  IntStamperConfig config;
  config.role = static_cast<StamperRole>(data[0]);
  config.device_id = net::read_be16(data, 1);
  return config;
}

IntStamper::IntStamper(IntStamperConfig config)
    : config_(config), stats_("int_stats", 2) {}

ppe::Verdict IntStamper::process(ppe::PacketContext& ctx) {
  if (config_.role == StamperRole::source) {
    TelemetryShim shim;
    shim.device_id = config_.device_id;
    shim.ingress_port =
        static_cast<std::uint8_t>(ctx.packet().ingress_port());
    shim.timestamp_ns = static_cast<std::uint64_t>(
        ctx.packet().ingress_time_ps() / 1000);
    if (push_telemetry_shim(ctx.bytes(), shim)) {
      ctx.invalidate_parse();
      stats_.add(0, ctx.packet().size());
    } else {
      stats_.add(1, ctx.packet().size());
    }
    return ppe::Verdict::forward;
  }

  const auto shim = pop_telemetry_shim(ctx.bytes());
  if (shim) {
    ctx.invalidate_parse();
    stats_.add(0, ctx.packet().size());
    ++sink_samples_;
    const auto now_ns =
        static_cast<double>(ctx.packet().ingress_time_ps()) / 1000.0;
    sink_latency_sum_ns_ += now_ns - double(shim->timestamp_ns);
  } else {
    stats_.add(1, ctx.packet().size());
  }
  return ppe::Verdict::forward;
}

hw::ResourceUsage IntStamper::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  usage += RM::parser(14, w);
  usage += RM::timestamp_unit();
  usage += RM::header_shift_unit(TelemetryShim::size(), w);
  usage += RM::deparser(w);
  usage += RM::csr_block(8);
  usage += RM::stream_fifo(128, 72);
  usage += RM::stream_fifo(128, 72);
  usage += RM::control_fsm(6, w);
  return usage;
}

std::vector<ppe::CounterSnapshot> IntStamper::counters() const {
  return {
      {"int_stats", 0, stats_.packets(0), stats_.bytes(0)},
      {"int_stats", 1, stats_.packets(1), stats_.bytes(1)},
  };
}

ppe::StageProfile IntStamper::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_bit(HeaderKind::ethernet);
  if (config_.role == StamperRole::source) {
    profile.produces = ppe::header_bit(HeaderKind::telemetry_shim);
  } else {
    profile.reads |= ppe::header_bit(HeaderKind::telemetry_shim);
    profile.consumes = ppe::header_bit(HeaderKind::telemetry_shim);
  }
  // Shim insertion/removal shifts the stream behind the Ethernet header.
  profile.match_action_cycles = 2;
  profile.counter_banks.push_back({"int_stats", stats_.size(), 1});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

// --- FlowStats --------------------------------------------------------------

net::Bytes FlowStatsConfig::serialize() const {
  net::Bytes out(20);
  net::write_be32(out, 0, cache_capacity);
  net::write_be64(out, 4, static_cast<std::uint64_t>(idle_timeout_ps));
  net::write_be64(out, 12, static_cast<std::uint64_t>(active_timeout_ps));
  return out;
}

std::optional<FlowStatsConfig> FlowStatsConfig::parse(net::BytesView data) {
  if (data.size() < 20) return std::nullopt;
  FlowStatsConfig config;
  config.cache_capacity = net::read_be32(data, 0);
  config.idle_timeout_ps =
      static_cast<std::int64_t>(net::read_be64(data, 4));
  config.active_timeout_ps =
      static_cast<std::int64_t>(net::read_be64(data, 12));
  if (config.cache_capacity == 0) return std::nullopt;
  return config;
}

FlowStats::FlowStats(FlowStatsConfig config)
    : config_(config),
      // key = 104-bit tuple pre-hashed to 64 bits; value = slot index.
      // Resource accounting reflects the real on-chip record width.
      index_("flow_index", config.cache_capacity, 104, 128),
      records_(config.cache_capacity),
      stats_("flow_stats", 2) {
  free_slots_.reserve(config_.cache_capacity);
  for (std::size_t i = config_.cache_capacity; i > 0; --i) {
    free_slots_.push_back(i - 1);
  }
}

ppe::Verdict FlowStats::process(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  const auto tuple = parsed.five_tuple();
  if (!tuple) return ppe::Verdict::forward;

  const std::uint64_t key = net::hash_tuple(*tuple);
  const std::int64_t now = ctx.packet().ingress_time_ps();
  const std::uint8_t flags = parsed.outer.tcp ? parsed.outer.tcp->flags : 0;

  const auto slot_hit = index_.lookup(key);
  if (slot_hit) {
    FlowRecord& record = records_[static_cast<std::size_t>(*slot_hit)];
    ++record.packets;
    record.bytes += ctx.packet().size();
    record.last_seen_ps = now;
    record.tcp_flags_seen |= flags;
    stats_.add(0, ctx.packet().size());
    return ppe::Verdict::forward;
  }

  if (free_slots_.empty()) {
    ++rejections_;
    stats_.add(1, ctx.packet().size());
    return ppe::Verdict::forward;
  }
  const std::size_t slot = free_slots_.back();
  if (!index_.insert(key, slot)) {  // bucket overflow
    ++rejections_;
    stats_.add(1, ctx.packet().size());
    return ppe::Verdict::forward;
  }
  free_slots_.pop_back();
  records_[slot] = FlowRecord{.tuple = *tuple,
                              .packets = 1,
                              .bytes = ctx.packet().size(),
                              .first_seen_ps = now,
                              .last_seen_ps = now,
                              .tcp_flags_seen = flags};
  stats_.add(0, ctx.packet().size());
  return ppe::Verdict::forward;
}

std::size_t FlowStats::active_flows() const {
  return config_.cache_capacity - free_slots_.size();
}

std::vector<FlowRecord> FlowStats::sweep(std::int64_t now_ps) {
  std::vector<FlowRecord> exported;
  std::vector<std::pair<std::uint64_t, std::size_t>> to_remove;
  index_.for_each([&](std::uint64_t key, std::uint64_t slot) {
    const FlowRecord& record = records_[static_cast<std::size_t>(slot)];
    const bool idle = now_ps - record.last_seen_ps >= config_.idle_timeout_ps;
    const bool aged = now_ps - record.first_seen_ps >= config_.active_timeout_ps;
    if (idle || aged) to_remove.emplace_back(key, slot);
  });
  for (const auto& [key, slot] : to_remove) {
    exported.push_back(records_[slot]);
    index_.erase(key);
    free_slots_.push_back(slot);
  }
  return exported;
}

std::vector<FlowRecord> FlowStats::export_all() {
  std::vector<FlowRecord> exported;
  std::vector<std::pair<std::uint64_t, std::size_t>> all;
  index_.for_each([&all](std::uint64_t key, std::uint64_t slot) {
    all.emplace_back(key, slot);
  });
  for (const auto& [key, slot] : all) {
    exported.push_back(records_[slot]);
    index_.erase(key);
    free_slots_.push_back(slot);
  }
  return exported;
}

hw::ResourceUsage FlowStats::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  usage += RM::parser(38, w);
  usage += RM::exact_match_table(config_.cache_capacity, 104, 128);
  usage += RM::deparser(w);
  usage += RM::csr_block(16);
  usage += RM::stream_fifo(128, 72);
  usage += RM::stream_fifo(128, 72);
  usage += RM::control_fsm(12, w);
  return usage;
}

std::vector<ppe::CounterSnapshot> FlowStats::counters() const {
  return {
      {"flow_stats", 0, stats_.packets(0), stats_.bytes(0)},
      {"flow_stats", 1, stats_.packets(1), stats_.bytes(1)},
  };
}

ppe::StageProfile FlowStats::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_set(
      {HeaderKind::ethernet, HeaderKind::ipv4, HeaderKind::tcp,
       HeaderKind::udp});
  profile.tables.push_back(ppe::TableProfile{
      .name = index_.name(),
      .kind = ppe::TableKind::exact_match,
      .capacity = index_.capacity(),
      .key_bits = index_.key_bits(),
      .value_bits = index_.value_bits(),
      .key_sources = ppe::header_set(
          {HeaderKind::ipv4, HeaderKind::tcp, HeaderKind::udp})});
  profile.counter_banks.push_back({"flow_stats", stats_.size(), 1});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

// --- Sampler ----------------------------------------------------------------

net::Bytes SamplerConfig::serialize() const {
  net::Bytes out(4);
  net::write_be32(out, 0, rate);
  return out;
}

std::optional<SamplerConfig> SamplerConfig::parse(net::BytesView data) {
  if (data.size() < 4) return std::nullopt;
  SamplerConfig config;
  config.rate = net::read_be32(data, 0);
  if (config.rate == 0) return std::nullopt;
  return config;
}

Sampler::Sampler(SamplerConfig config) : config_(config) {}

ppe::Verdict Sampler::process(ppe::PacketContext& ctx) {
  if (++counter_ >= config_.rate) {
    counter_ = 0;
    ++sampled_;
    ctx.request_mirror();
  }
  return ppe::Verdict::forward;
}

hw::ResourceUsage Sampler::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  usage += RM::csr_block(4);
  usage += RM::control_fsm(4, w);
  usage += RM::stream_fifo(128, 72);
  return usage;
}

ppe::StageProfile Sampler::profile() const {
  ppe::StageProfile profile;
  profile.stage = name();
  // Pure packet-count sampling: no header dependence at all.
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

// --- registration -----------------------------------------------------------

namespace {
const bool registered_int = ppe::register_ppe_app(
    "int", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<IntStamper>();
      const auto parsed = IntStamperConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<IntStamper>(*parsed);
    });
const bool registered_flow = ppe::register_ppe_app(
    "flowstats", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<FlowStats>();
      const auto parsed = FlowStatsConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<FlowStats>(*parsed);
    });
const bool registered_sampler = ppe::register_ppe_app(
    "sampler", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<Sampler>();
      const auto parsed = SamplerConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<Sampler>(*parsed);
    });
}  // namespace

void link_telemetry_apps() {
  (void)registered_int;
  (void)registered_flow;
  (void)registered_sampler;
}

}  // namespace flexsfp::apps
