// lw4o6 softwire (RFC 7596) with A+P port-restricted mapping (RFC 7597):
// the carrier-edge workload from ROADMAP item 1. Two apps share the PSID
// arithmetic below:
//
//   * LwAftr — the provider-side tunnel concentrator. IPv4 traffic from the
//     internet is matched against a per-subscriber (ipv4, psid) binding
//     table and encapsulated in IPv6 toward the subscriber's B4; IPv6
//     traffic addressed to the AFTR is source-verified (anti-spoof) and
//     decapsulated — or hairpinned straight to another subscriber's B4
//     without ever leaving the module. Unmappable IPv4 packets can be
//     answered with ICMPv4 destination-unreachable, per RFC 7596 §5.2.
//   * LwB4 — the subscriber-side tunnel endpoint: one (ipv4, psid) lease,
//     encapsulating upstream traffic whose source port falls inside the
//     restricted port set and dropping out-of-set ports (the NAPT44 it
//     fronts must not leak them).
//
// Both apps expose profile() introspection so analysis::PipelineVerifier
// can decide statically whether a given subscriber count fits the cable's
// SRAM and cycle budget — the paper's feasibility question asked of a
// carrier workload.
#pragma once

#include <cstdint>
#include <vector>

#include "ppe/app.hpp"
#include "ppe/tables.hpp"

namespace flexsfp::apps {

// --- A+P port-restricted mapping arithmetic (RFC 7597 §5.1) ----------------
//
// A 16-bit port is laid out as [ a offset bits | k PSID bits | m bits ] with
// a + k <= 16. Ports whose top `a` bits are all zero (the system range
// 0..2^(16-a)-1) belong to no subscriber when a > 0.

struct PsidParams {
  std::uint8_t psid_len = 0;     // k: bits of PSID embedded in the port
  std::uint8_t psid_offset = 0;  // a: excluded high bits (RFC default 6)

  friend constexpr bool operator==(const PsidParams&,
                                   const PsidParams&) = default;
};

/// a + k must fit in a 16-bit port.
[[nodiscard]] constexpr bool psid_params_valid(PsidParams p) {
  return std::uint32_t{p.psid_len} + std::uint32_t{p.psid_offset} <= 16;
}

/// Contiguous low-bit run length m = 16 - a - k.
[[nodiscard]] constexpr std::uint32_t psid_m_bits(PsidParams p) {
  return 16u - p.psid_offset - p.psid_len;
}

/// The PSID whose port set contains `port` (ignoring the exclusion range).
[[nodiscard]] constexpr std::uint16_t psid_of_port(PsidParams p,
                                                   std::uint16_t port) {
  const std::uint32_t m = psid_m_bits(p);
  const std::uint32_t mask = (std::uint32_t{1} << p.psid_len) - 1;
  return static_cast<std::uint16_t>((std::uint32_t{port} >> m) & mask);
}

/// True when `port` sits in the system range no subscriber may use
/// (top `a` bits all zero, a > 0 — ports 0..2^(16-a)-1).
[[nodiscard]] constexpr bool port_excluded(PsidParams p, std::uint16_t port) {
  return p.psid_offset > 0 &&
         (std::uint32_t{port} >> (16u - p.psid_offset)) == 0;
}

/// Membership test: `port` belongs to the subscriber holding `psid`.
[[nodiscard]] constexpr bool port_in_set(PsidParams p, std::uint16_t psid,
                                         std::uint16_t port) {
  return !port_excluded(p, port) && psid_of_port(p, port) == psid;
}

/// Number of ports a single PSID owns: (2^a - 1) * 2^m blocks of m-bit runs
/// (just 2^m when a == 0 — one contiguous range, no exclusion).
[[nodiscard]] constexpr std::uint32_t port_set_size(PsidParams p) {
  const std::uint32_t blocks =
      p.psid_offset > 0 ? (std::uint32_t{1} << p.psid_offset) - 1 : 1;
  return blocks * (std::uint32_t{1} << psid_m_bits(p));
}

/// The `index`-th port (0-based, ascending) of `psid`'s port set — how the
/// bench and tests enumerate a subscriber's legal ports. Precondition:
/// index < port_set_size(p).
[[nodiscard]] constexpr std::uint16_t port_for_index(PsidParams p,
                                                     std::uint16_t psid,
                                                     std::uint32_t index) {
  const std::uint32_t m = psid_m_bits(p);
  const std::uint32_t block = index >> m;           // which A block
  const std::uint32_t within = index & ((std::uint32_t{1} << m) - 1);
  const std::uint32_t a_value = p.psid_offset > 0 ? block + 1 : 0;
  return static_cast<std::uint16_t>((a_value << (16u - p.psid_offset)) |
                                    (std::uint32_t{psid} << m) | within);
}

// --- LwAftr ----------------------------------------------------------------

enum class SoftwireMissAction : std::uint8_t {
  drop = 0,
  punt = 1,         // hand to the embedded control plane
  icmp_reject = 2,  // answer with ICMPv4 dest-unreachable (RFC 7596 §5.2)
};

struct LwAftrConfig {
  /// The AFTR's own IPv6 address — tunnel destination for every lwB4 and
  /// the only address decapsulated traffic may target.
  net::Ipv6Address aftr_addr;
  /// Source address of generated ICMPv4 errors.
  net::Ipv4Address icmp_src;
  /// Binding-table geometry: one entry per (ipv4, psid) subscriber lease.
  std::uint32_t binding_capacity = 32768;
  SoftwireMissAction miss_action = SoftwireMissAction::icmp_reject;
  /// Forward subscriber-to-subscriber traffic module-internally instead of
  /// decapsulating it toward the internet.
  bool hairpin = true;
  std::uint8_t tunnel_hop_limit = 64;
  /// High 64 bits composed with the value of a generic table_insert into
  /// "binding" to form the B4 /128 (the typed add_binding() API carries the
  /// full address and ignores this).
  std::uint64_t b4_prefix_hi = 0x20010db8'00000000ull;

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<LwAftrConfig> parse(net::BytesView data);
};

class LwAftr final : public ppe::PpeApp {
 public:
  explicit LwAftr(LwAftrConfig config = {});

  /// Registry name: "lwaftr".
  [[nodiscard]] std::string name() const override { return "lwaftr"; }

  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;

  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] hw::ResourceBreakdown resource_breakdown(
      const hw::DatapathConfig& datapath) const;

  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  // --- subscriber provisioning (typed control-plane API) -------------------
  /// Install the lease (ipv4, psid) -> b4. All PSIDs of one shared IPv4
  /// address must agree on `params`; a second binding with different
  /// arithmetic is rejected. Re-adding an existing lease updates its B4.
  bool add_binding(net::Ipv4Address ipv4, std::uint16_t psid,
                   PsidParams params, const net::Ipv6Address& b4);
  bool remove_binding(net::Ipv4Address ipv4, std::uint16_t psid);
  [[nodiscard]] std::optional<net::Ipv6Address> b4_for(
      net::Ipv4Address ipv4, std::uint16_t psid) const;
  [[nodiscard]] std::optional<PsidParams> params_for(
      net::Ipv4Address ipv4) const;
  [[nodiscard]] std::size_t binding_count() const { return binding_.size(); }

  [[nodiscard]] const LwAftrConfig& config() const { return config_; }

  // --- generic control-plane surface ---------------------------------------
  [[nodiscard]] std::vector<std::string> table_names() const override {
    return {"binding", "psid_map"};
  }
  bool table_insert(std::string_view table, std::uint64_t key,
                    std::uint64_t value) override;
  bool table_erase(std::string_view table, std::uint64_t key) override;
  [[nodiscard]] std::optional<std::uint64_t> table_lookup(
      std::string_view table, std::uint64_t key) const override;
  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

  // Counter slot indices (shared with the tests/bench ledger).
  enum Stat : std::size_t {
    stat_encapsulated = 0,
    stat_decapsulated = 1,
    stat_hairpinned = 2,
    stat_unmappable_v4 = 3,
    stat_antispoof_dropped = 4,
    stat_fragments_rejected = 5,
    stat_icmp_rejected = 6,
    stat_punted = 7,
    stat_passthrough = 8,
    stat_malformed = 9,
    stat_count = 10,
  };
  [[nodiscard]] std::uint64_t stat_packets(Stat s) const {
    return stats_.packets(s);
  }

 private:
  [[nodiscard]] static std::uint64_t binding_key(net::Ipv4Address ipv4,
                                                 std::uint16_t psid) {
    return (std::uint64_t{ipv4.value()} << 16) | psid;
  }
  [[nodiscard]] ppe::Verdict miss_verdict(ppe::PacketContext& ctx);
  [[nodiscard]] ppe::Verdict process_ipv6(ppe::PacketContext& ctx);
  [[nodiscard]] ppe::Verdict process_ipv4(ppe::PacketContext& ctx);
  /// binding-table hit for (addr, port-derived psid), or nullopt.
  [[nodiscard]] std::optional<std::uint64_t> match_subscriber(
      net::Ipv4Address addr, std::uint16_t port) const;
  void rewrite_as_icmp_unreachable(ppe::PacketContext& ctx);

  LwAftrConfig config_;
  /// ipv4 -> PSID arithmetic for that shared address. The low 16 bits
  /// (offset << 8 | psid_len) are the datapath value the declared 16-bit
  /// SRAM entry holds; bits 16.. carry the control plane's shadow refcount
  /// of leases on the address (soft state living beside the table, not in
  /// it — it never influences a per-packet decision).
  ppe::ExactMatchTable psid_map_;
  /// (ipv4 << 16 | psid) -> slot index into b4_slots_.
  ppe::ExactMatchTable binding_;
  /// Full /128 B4 addresses, indexed by binding_ values; 64-bit table
  /// values cannot hold them, the declared 128-bit entry width can.
  std::vector<net::Ipv6Address> b4_slots_;
  std::vector<std::uint32_t> free_slots_;
  ppe::CounterBank stats_;
};

// --- LwB4 ------------------------------------------------------------------

struct LwB4Config {
  net::Ipv4Address ipv4;       // the shared public address of the lease
  std::uint16_t psid = 0;
  PsidParams params;
  net::Ipv6Address b4_addr;    // this subscriber's tunnel endpoint
  net::Ipv6Address aftr_addr;  // tunnel concentrator
  std::uint8_t tunnel_hop_limit = 64;

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<LwB4Config> parse(net::BytesView data);
};

class LwB4 final : public ppe::PpeApp {
 public:
  explicit LwB4(LwB4Config config = {});

  /// Registry name: "lwb4".
  [[nodiscard]] std::string name() const override { return "lwb4"; }

  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;

  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;
  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

  [[nodiscard]] const LwB4Config& config() const { return config_; }

  enum Stat : std::size_t {
    stat_encapsulated = 0,
    stat_decapsulated = 1,
    stat_port_out_of_set = 2,
    stat_passthrough = 3,
    stat_malformed = 4,
    stat_count = 5,
  };
  [[nodiscard]] std::uint64_t stat_packets(Stat s) const {
    return stats_.packets(s);
  }

 private:
  LwB4Config config_;
  ppe::CounterBank stats_;
};

}  // namespace flexsfp::apps
