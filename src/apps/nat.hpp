// The paper's §5.1 case study: a static, one-to-one source NAT translating
// IPv4 source addresses at 10 Gb/s line rate, with a 32,768-flow hash table
// in LSRAM. Checksums are patched incrementally (RFC 1624) so the edit cost
// is independent of packet size.
#pragma once

#include <cstdint>

#include "ppe/app.hpp"
#include "ppe/tables.hpp"

namespace flexsfp::apps {

enum class NatDirection : std::uint8_t {
  source = 0,       // rewrite source address (outbound path)
  destination = 1,  // rewrite destination address (return path)
};

enum class NatMissAction : std::uint8_t {
  forward = 0,  // pass untranslated traffic through
  drop = 1,
  punt = 2,     // hand to the embedded control plane
};

struct NatConfig {
  NatDirection direction = NatDirection::source;
  NatMissAction miss_action = NatMissAction::forward;
  /// Table geometry (the paper's build: 32,768 flows).
  std::uint32_t table_capacity = 32768;

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<NatConfig> parse(net::BytesView data);
};

class StaticNat final : public ppe::PpeApp {
 public:
  explicit StaticNat(NatConfig config = {});

  /// Registry name: "nat".
  [[nodiscard]] std::string name() const override { return "nat"; }

  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  /// Vectorized burst path: extracts every packet's match address, streams
  /// the keys through ExactMatchTable::lookup_batch (SoA probe with
  /// next-key prefetch), then applies the per-packet rewrite. Observably
  /// identical to calling process() per packet.
  void process_batch(ppe::PacketContext* const* ctxs, ppe::Verdict* out,
                     std::size_t n) override;

  /// Component breakdown matching the paper's Table 1 "NAT app" row:
  /// parser, hash+table control, field edit, checksum patch, deparser,
  /// CSRs, three stream FIFOs (36 uSRAM) and the pipeline FSM.
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] hw::ResourceBreakdown resource_breakdown(
      const hw::DatapathConfig& datapath) const;

  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  /// Add a translation original -> translated.
  bool add_mapping(net::Ipv4Address original, net::Ipv4Address translated);
  bool remove_mapping(net::Ipv4Address original);
  [[nodiscard]] std::optional<net::Ipv4Address> translation_for(
      net::Ipv4Address original) const;

  [[nodiscard]] const NatConfig& config() const { return config_; }
  [[nodiscard]] const ppe::ExactMatchTable& table() const { return table_; }

  // Control-plane surface.
  [[nodiscard]] std::vector<std::string> table_names() const override {
    return {"nat"};
  }
  bool table_insert(std::string_view table, std::uint64_t key,
                    std::uint64_t value) override;
  bool table_erase(std::string_view table, std::uint64_t key) override;
  [[nodiscard]] std::optional<std::uint64_t> table_lookup(
      std::string_view table, std::uint64_t key) const override;
  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  NatConfig config_;
  ppe::ExactMatchTable table_;
  ppe::CounterBank stats_;  // 0 = translated, 1 = missed, 2 = non-ipv4
};

}  // namespace flexsfp::apps
