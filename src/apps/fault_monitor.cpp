#include "apps/fault_monitor.hpp"

#include "hw/resource_model.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

net::Bytes FaultMonitorConfig::serialize() const {
  net::Bytes out(24);
  net::write_be64(out, 0, static_cast<std::uint64_t>(burst_window_ps));
  net::write_be64(out, 8, burst_threshold_bps);
  net::write_be64(out, 16, static_cast<std::uint64_t>(silence_threshold_ps));
  return out;
}

std::optional<FaultMonitorConfig> FaultMonitorConfig::parse(
    net::BytesView data) {
  if (data.size() < 24) return std::nullopt;
  FaultMonitorConfig config;
  config.burst_window_ps = static_cast<std::int64_t>(net::read_be64(data, 0));
  config.burst_threshold_bps = net::read_be64(data, 8);
  config.silence_threshold_ps =
      static_cast<std::int64_t>(net::read_be64(data, 16));
  if (config.burst_window_ps <= 0) return std::nullopt;
  return config;
}

FaultMonitor::FaultMonitor(FaultMonitorConfig config)
    : config_(config),
      rate_(config.burst_window_ps),
      stats_("faultmon_stats", 1) {}

ppe::Verdict FaultMonitor::process(ppe::PacketContext& ctx) {
  const std::int64_t now = ctx.packet().ingress_time_ps();

  if (last_packet_ps_ >= 0 &&
      now - last_packet_ps_ >= config_.silence_threshold_ps) {
    ++silences_;
  }
  last_packet_ps_ = now;

  rate_.record(now, ctx.packet().wire_size());
  // A completed window above threshold counts once.
  const double window_bps = rate_.last_window_bps();
  if (window_bps != last_reported_window_bps_) {
    if (window_bps > double(config_.burst_threshold_bps)) ++microbursts_;
    last_reported_window_bps_ = window_bps;
  }

  stats_.add(0, ctx.packet().size());
  return ppe::Verdict::forward;
}

hw::ResourceUsage FaultMonitor::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  usage += RM::timestamp_unit();
  usage += RM::counter_bank(16, 64);
  usage += RM::csr_block(12);
  usage += RM::control_fsm(8, w);
  usage += RM::stream_fifo(128, 72);
  return usage;
}

std::vector<ppe::CounterSnapshot> FaultMonitor::counters() const {
  return {
      {"faultmon_stats", 0, stats_.packets(0), stats_.bytes(0)},
      {"faultmon_events", 0, microbursts_, 0},
      {"faultmon_events", 1, silences_, 0},
  };
}

ppe::StageProfile FaultMonitor::profile() const {
  ppe::StageProfile profile;
  profile.stage = name();
  // Watches sizes and timestamps only; no header dependence.
  profile.counter_banks.push_back({"faultmon_stats", stats_.size(), 0});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

namespace {
const bool registered = ppe::register_ppe_app(
    "faultmon", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<FaultMonitor>();
      const auto parsed = FaultMonitorConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<FaultMonitor>(*parsed);
    });
}  // namespace

void link_faultmon_app() { (void)registered; }

}  // namespace flexsfp::apps
