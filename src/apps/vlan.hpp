// VLAN tagging / QinQ segmentation (§3 "Packet Transformation"): push, pop,
// rewrite or service-tag frames at the optical boundary, with an optional
// VID translation table — the classic legacy-switch retrofit function.
#pragma once

#include <cstdint>

#include "ppe/app.hpp"
#include "ppe/tables.hpp"

namespace flexsfp::apps {

enum class VlanMode : std::uint8_t {
  push = 0,       // add an 802.1Q tag with the configured VID
  pop = 1,        // strip the outermost tag
  rewrite = 2,    // rewrite the outer VID (using the translation table if
                  // it has a mapping, else the configured VID)
  qinq_push = 3,  // add an 802.1ad service tag in front of existing tags
};

struct VlanConfig {
  VlanMode mode = VlanMode::push;
  std::uint16_t vid = 100;
  std::uint8_t pcp = 0;
  /// Drop untagged frames in pop/rewrite modes instead of passing them.
  bool strict = false;

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<VlanConfig> parse(net::BytesView data);
};

class VlanTagger final : public ppe::PpeApp {
 public:
  explicit VlanTagger(VlanConfig config = {});

  [[nodiscard]] std::string name() const override { return "vlan"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  /// VID translation mapping for rewrite mode.
  bool add_translation(std::uint16_t from_vid, std::uint16_t to_vid);

  [[nodiscard]] const VlanConfig& config() const { return config_; }

  [[nodiscard]] std::vector<std::string> table_names() const override {
    return {"vid_translation"};
  }
  bool table_insert(std::string_view table, std::uint64_t key,
                    std::uint64_t value) override;
  bool table_erase(std::string_view table, std::uint64_t key) override;
  [[nodiscard]] std::optional<std::uint64_t> table_lookup(
      std::string_view table, std::uint64_t key) const override;
  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  VlanConfig config_;
  ppe::ExactMatchTable translation_;  // vid -> vid, 4096 entries
  ppe::CounterBank stats_;            // 0 = tagged/edited, 1 = passed, 2 = dropped
};

}  // namespace flexsfp::apps
