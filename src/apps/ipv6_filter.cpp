#include "apps/ipv6_filter.hpp"

#include <algorithm>

#include "hw/resource_model.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

net::Bytes Ipv6FilterConfig::serialize() const {
  net::Bytes out(6);
  out[0] = static_cast<std::uint8_t>(field);
  out[1] = static_cast<std::uint8_t>(default_action);
  net::write_be32(out, 2, rule_capacity);
  return out;
}

std::optional<Ipv6FilterConfig> Ipv6FilterConfig::parse(net::BytesView data) {
  if (data.size() < 6 || data[0] > 1 || data[1] > 1) return std::nullopt;
  Ipv6FilterConfig config;
  config.field = static_cast<Ipv6MatchField>(data[0]);
  config.default_action = static_cast<Ipv6Action>(data[1]);
  config.rule_capacity = net::read_be32(data, 2);
  if (config.rule_capacity == 0) return std::nullopt;
  return config;
}

Ipv6Filter::Ipv6Filter(Ipv6FilterConfig config)
    : config_(config), stats_("ipv6_stats", 3) {}

ppe::Verdict Ipv6Filter::process(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  if (!parsed.outer.ipv6) {
    stats_.add(2, ctx.packet().size());
    return ppe::Verdict::forward;  // IPv4/other traffic is out of scope
  }
  const net::Ipv6Address& addr = config_.field == Ipv6MatchField::source
                                     ? parsed.outer.ipv6->src
                                     : parsed.outer.ipv6->dst;
  Ipv6Action action = config_.default_action;
  for (const auto& rule : rules_) {  // descending length: first hit = LPM
    if (rule.prefix.contains(addr)) {
      action = rule.action;
      break;
    }
  }
  if (action == Ipv6Action::permit) {
    stats_.add(0, ctx.packet().size());
    return ppe::Verdict::forward;
  }
  stats_.add(1, ctx.packet().size());
  return ppe::Verdict::drop;
}

bool Ipv6Filter::add_rule(net::Ipv6Prefix prefix, Ipv6Action action) {
  if (rules_.size() >= config_.rule_capacity) return false;
  const auto pos = std::find_if(rules_.begin(), rules_.end(),
                                [&prefix](const Ipv6Rule& rule) {
                                  return rule.prefix.length() < prefix.length();
                                });
  rules_.insert(pos, Ipv6Rule{prefix, action});
  return true;
}

bool Ipv6Filter::remove_rule(const net::Ipv6Prefix& prefix) {
  const auto it = std::find_if(
      rules_.begin(), rules_.end(),
      [&prefix](const Ipv6Rule& rule) { return rule.prefix == prefix; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

void Ipv6Filter::clear_rules() { rules_.clear(); }

hw::ResourceUsage Ipv6Filter::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  usage += RM::parser(54, w);  // Ethernet + full IPv6 header
  // 128-bit masked compare per rule: TCAM-style over the wide key.
  usage += RM::ternary_table(config_.rule_capacity, 128);
  usage += RM::deparser(w);
  usage += RM::csr_block(12);
  usage += RM::stream_fifo(128, 72);
  usage += RM::stream_fifo(128, 72);
  usage += RM::control_fsm(8, w);
  return usage;
}

std::vector<ppe::CounterSnapshot> Ipv6Filter::counters() const {
  return {
      {"ipv6_stats", 0, stats_.packets(0), stats_.bytes(0)},
      {"ipv6_stats", 1, stats_.packets(1), stats_.bytes(1)},
      {"ipv6_stats", 2, stats_.packets(2), stats_.bytes(2)},
  };
}

ppe::StageProfile Ipv6Filter::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_set({HeaderKind::ethernet, HeaderKind::ipv6});
  profile.tables.push_back(ppe::TableProfile{
      .name = "ipv6_rules",
      .kind = ppe::TableKind::ternary,
      .capacity = config_.rule_capacity,
      .key_bits = 128,
      .value_bits = 8,
      .key_sources = ppe::header_bit(HeaderKind::ipv6)});
  profile.counter_banks.push_back({"ipv6_stats", stats_.size(), 2});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

namespace {
const bool registered = ppe::register_ppe_app(
    "ipv6filter", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<Ipv6Filter>();
      const auto parsed = Ipv6FilterConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<Ipv6Filter>(*parsed);
    });
}  // namespace

void link_ipv6_filter_app() { (void)registered; }

}  // namespace flexsfp::apps
