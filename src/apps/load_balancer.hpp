// Flow-consistent load balancing at the optical boundary (§3: "hashing over
// packet headers to distribute flows across uplinks, similar to Katran").
//
// Backend selection uses Maglev-style consistent hashing: each backend fills
// a fixed-size lookup table via its own permutation, so adding or removing a
// backend disturbs only ~1/N of the table — the property that keeps existing
// flows pinned through membership churn. The per-packet path is one hash of
// the canonicalized 5-tuple (direction-symmetric) plus one table read, well
// within the PPE budget.
#pragma once

#include <cstdint>

#include "net/flow.hpp"
#include "ppe/app.hpp"
#include "ppe/counters.hpp"

namespace flexsfp::apps {

struct Backend {
  std::uint32_t id = 0;
  net::MacAddress next_hop;  // rewritten into the frame's destination MAC
  bool healthy = true;
};

struct LoadBalancerConfig {
  /// Maglev table size; must be prime for the permutation math. 8191 gives
  /// < 0.03% imbalance for tens of backends while fitting easily in LSRAM.
  std::uint32_t table_size = 8191;

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<LoadBalancerConfig> parse(
      net::BytesView data);
};

class LoadBalancer final : public ppe::PpeApp {
 public:
  explicit LoadBalancer(LoadBalancerConfig config = {});

  [[nodiscard]] std::string name() const override { return "lb"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  /// Membership updates rebuild the Maglev table (a control-plane
  /// operation; the datapath sees one atomic pointer swap).
  void add_backend(Backend backend);
  bool remove_backend(std::uint32_t id);
  bool set_backend_health(std::uint32_t id, bool healthy);

  /// Which backend a given flow maps to (exposed for tests and ops).
  [[nodiscard]] std::optional<Backend> backend_for(
      const net::FiveTuple& tuple) const;
  [[nodiscard]] const std::vector<Backend>& backends() const {
    return backends_;
  }
  /// The raw lookup table (backend index per slot), for balance tests.
  [[nodiscard]] const std::vector<std::int32_t>& lookup_table() const {
    return table_;
  }
  [[nodiscard]] std::uint64_t packets_to(std::uint32_t backend_id) const;

  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  void rebuild_table();
  [[nodiscard]] std::vector<std::size_t> active_backend_indices() const;

  LoadBalancerConfig config_;
  std::vector<Backend> backends_;
  std::vector<std::int32_t> table_;  // slot -> index into backends_, -1 empty
  ppe::CounterBank stats_;  // per backend slot (by insertion order), capped
};

}  // namespace flexsfp::apps
