// Packet sanitization & protocol validation (§3: "removing deprecated
// headers, blocking malformed packets"), plus DoH blocking (§2.1) — screening
// traffic before it reaches the NIC, switch or customer premises.
#pragma once

#include <cstdint>

#include "net/parser.hpp"
#include "ppe/app.hpp"
#include "ppe/counters.hpp"
#include "ppe/tables.hpp"

namespace flexsfp::apps {

/// Bitmask over net::ValidationIssue selecting which issues cause a drop.
using IssueMask = std::uint32_t;

[[nodiscard]] constexpr IssueMask issue_bit(net::ValidationIssue issue) {
  return IssueMask{1} << static_cast<std::uint8_t>(issue);
}

/// A hardened-edge default: drop checksum/length violations, martians,
/// bogus TCP flag combinations and unparseable frames.
[[nodiscard]] IssueMask strict_issue_mask();

struct SanitizerConfig {
  IssueMask drop_mask = 0;  // 0 = observe only
  /// Strip IPv4 options in place (rewrites IHL, recomputes the checksum) —
  /// the paper's "removing deprecated headers".
  bool strip_ipv4_options = false;
  /// Drop frames the parser rejects outright.
  bool drop_unparseable = true;
  /// Enable DoH blocking: TCP/UDP port 443 toward a configured resolver
  /// set is dropped.
  bool block_doh = false;

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<SanitizerConfig> parse(
      net::BytesView data);
};

class Sanitizer final : public ppe::PpeApp {
 public:
  explicit Sanitizer(SanitizerConfig config = {});

  [[nodiscard]] std::string name() const override { return "sanitizer"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  /// Register a DoH resolver address to block.
  bool add_doh_resolver(net::Ipv4Address resolver);

  [[nodiscard]] std::uint64_t dropped() const { return stats_.packets(1); }
  [[nodiscard]] std::uint64_t repaired() const { return stats_.packets(2); }
  /// Per-issue observation counters (indexed by ValidationIssue).
  [[nodiscard]] std::uint64_t issue_count(net::ValidationIssue issue) const {
    return issues_.packets(static_cast<std::size_t>(issue));
  }

  [[nodiscard]] std::vector<std::string> table_names() const override {
    return {"doh_resolvers"};
  }
  bool table_insert(std::string_view table, std::uint64_t key,
                    std::uint64_t value) override;
  bool table_erase(std::string_view table, std::uint64_t key) override;
  [[nodiscard]] std::optional<std::uint64_t> table_lookup(
      std::string_view table, std::uint64_t key) const override;
  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  /// Rewrite the IPv4 header to IHL=5, dropping option bytes.
  static bool strip_options(net::Bytes& frame, const net::ParsedPacket& parsed);

  SanitizerConfig config_;
  ppe::ExactMatchTable doh_resolvers_;
  ppe::CounterBank stats_;   // 0 clean, 1 dropped, 2 repaired, 3 doh-blocked
  ppe::CounterBank issues_;  // one per ValidationIssue
};

}  // namespace flexsfp::apps
