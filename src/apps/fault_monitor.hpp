// Active fault detection at the wire (§3: "detecting faults such as link
// flapping, microbursts, or fiber breaks, with a 'wire-level' capillarity").
//
// The monitor watches the packet stream itself: short-window rate spikes
// (microbursts), abnormal inter-arrival silences (loss-of-signal candidates)
// and a counter surface the control plane exports. Laser-degradation
// telemetry lives in sfp::VcselModel; this app covers the traffic-visible
// symptoms.
#pragma once

#include <cstdint>

#include "ppe/app.hpp"
#include "ppe/counters.hpp"
#include "sim/stats.hpp"

namespace flexsfp::apps {

struct FaultMonitorConfig {
  /// Microburst detection window and threshold: a window whose average
  /// rate exceeds `burst_threshold_bps` counts as a burst.
  std::int64_t burst_window_ps = 100'000'000;  // 100 us
  std::uint64_t burst_threshold_bps = 8'000'000'000;  // 80% of 10G
  /// A gap longer than this between packets is a silence event
  /// (candidate link flap / fiber break when the link should be busy).
  std::int64_t silence_threshold_ps = 10'000'000'000;  // 10 ms

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<FaultMonitorConfig> parse(
      net::BytesView data);
};

class FaultMonitor final : public ppe::PpeApp {
 public:
  explicit FaultMonitor(FaultMonitorConfig config = {});

  [[nodiscard]] std::string name() const override { return "faultmon"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  [[nodiscard]] std::uint64_t microbursts_detected() const {
    return microbursts_;
  }
  [[nodiscard]] std::uint64_t silence_events() const { return silences_; }
  [[nodiscard]] double peak_window_bps() const { return rate_.peak_bps(); }

  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  FaultMonitorConfig config_;
  sim::WindowedRate rate_;
  std::int64_t last_packet_ps_ = -1;
  double last_reported_window_bps_ = 0;
  std::uint64_t microbursts_ = 0;
  std::uint64_t silences_ = 0;
  ppe::CounterBank stats_;  // 0 observed
};

}  // namespace flexsfp::apps
