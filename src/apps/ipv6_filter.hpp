// Per-subscriber IPv6 filtering — named explicitly in §2.1 as one of the
// policies telecom operators must otherwise enforce upstream: prefix-based
// permit/deny over IPv6 traffic, with a configurable disposition for
// subscribers with no IPv6 service at all.
#pragma once

#include <cstdint>
#include <vector>

#include "net/addresses.hpp"
#include "ppe/app.hpp"
#include "ppe/counters.hpp"

namespace flexsfp::apps {

enum class Ipv6Action : std::uint8_t {
  permit = 0,
  deny = 1,
};

struct Ipv6Rule {
  net::Ipv6Prefix prefix;  // matched against src (uplink) or dst (downlink)
  Ipv6Action action = Ipv6Action::deny;
};

enum class Ipv6MatchField : std::uint8_t {
  source = 0,       // subscriber -> network (uplink policing)
  destination = 1,  // network -> subscriber (downlink policing)
};

struct Ipv6FilterConfig {
  Ipv6MatchField field = Ipv6MatchField::source;
  /// Disposition for IPv6 traffic matching no rule. deny-by-default turns
  /// the port into "no IPv6 service unless provisioned".
  Ipv6Action default_action = Ipv6Action::deny;
  std::uint32_t rule_capacity = 256;

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<Ipv6FilterConfig> parse(
      net::BytesView data);
};

class Ipv6Filter final : public ppe::PpeApp {
 public:
  explicit Ipv6Filter(Ipv6FilterConfig config = {});

  [[nodiscard]] std::string name() const override { return "ipv6filter"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  /// Longest prefix wins; equal lengths: first added wins. False when at
  /// capacity.
  bool add_rule(net::Ipv6Prefix prefix, Ipv6Action action);
  bool remove_rule(const net::Ipv6Prefix& prefix);
  void clear_rules();
  [[nodiscard]] const std::vector<Ipv6Rule>& rules() const { return rules_; }

  [[nodiscard]] std::uint64_t permitted() const { return stats_.packets(0); }
  [[nodiscard]] std::uint64_t denied() const { return stats_.packets(1); }
  /// Non-IPv6 traffic passed through untouched.
  [[nodiscard]] std::uint64_t bypassed() const { return stats_.packets(2); }

  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  Ipv6FilterConfig config_;
  std::vector<Ipv6Rule> rules_;  // sorted by descending prefix length
  ppe::CounterBank stats_;       // 0 permit, 1 deny, 2 bypass (non-IPv6)
};

}  // namespace flexsfp::apps
