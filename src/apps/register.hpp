// Explicit registration entry point.
//
// App factories self-register through static initializers, but a static
// library only links the object files something references. Call this from
// any binary that loads apps by name (bitstreams, management protocol) to
// guarantee every built-in app is linked and registered. Idempotent.
#pragma once

namespace flexsfp::apps {

void register_builtin_apps();

}  // namespace flexsfp::apps
