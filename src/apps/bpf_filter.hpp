// A classic-BPF-style filter virtual machine: the §4.2 programming-model
// path where "the developer writes the packet function (e.g., an XDP
// program)" and the toolchain maps it onto the module. Following hXDP
// (which the paper cites as a fit candidate), the program executes
// sequentially on a small soft core: one instruction per cycle, so program
// length shows up directly in the pipeline-latency budget.
//
// The ISA is a compact classic-BPF dialect: accumulator A, index X,
// absolute/indexed packet loads, ALU ops, forward-only conditional jumps,
// and three terminal verdicts (accept / drop / punt).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ppe/app.hpp"
#include "ppe/counters.hpp"

namespace flexsfp::apps {

enum class BpfOp : std::uint8_t {
  // loads
  ld_imm = 0,    // A = k
  ld_len = 1,    // A = packet length
  ld_abs_u8 = 2,   // A = pkt[k]
  ld_abs_u16 = 3,  // A = be16(pkt[k])
  ld_abs_u32 = 4,  // A = be32(pkt[k])
  ld_ind_u8 = 5,   // A = pkt[X + k]
  ld_ind_u16 = 6,
  ld_ind_u32 = 7,
  ldx_imm = 8,  // X = k
  tax = 9,      // X = A
  txa = 10,     // A = X
  // ALU (A op= k)
  alu_add = 11,
  alu_sub = 12,
  alu_and = 13,
  alu_or = 14,
  alu_lsh = 15,
  alu_rsh = 16,
  alu_add_x = 17,  // A += X
  // control (forward-only): on true pc += 1+jt, on false pc += 1+jf
  jeq = 18,   // A == k
  jgt = 19,   // A > k
  jge = 20,   // A >= k
  jset = 21,  // (A & k) != 0
  ja = 22,    // unconditional pc += 1+k
  // terminals
  ret_accept = 23,
  ret_drop = 24,
  ret_punt = 25,
};

struct BpfInsn {
  BpfOp op = BpfOp::ret_drop;
  std::uint32_t k = 0;
  std::uint8_t jt = 0;
  std::uint8_t jf = 0;
};

/// A validated program. Construction enforces the safety rules a loader
/// would: bounded length, known opcodes, forward-only jumps that stay in
/// range, a terminal instruction on the fall-through end, and shift counts
/// below 32 (the interpreter masks with `& 31`; a larger count is always a
/// bug, so it is rejected rather than silently wrapped). Deeper semantic
/// guarantees — provable load bounds, reachability, honest worst-case path
/// latency — are the analysis::BpfVerifier's job at deploy time.
class BpfProgram {
 public:
  static constexpr std::size_t max_instructions = 256;

  /// Structural safety rules alone: bounded length, known opcodes, forward
  /// in-range jumps, terminal end. Shared with the static analyzer, which
  /// accepts structurally valid bytecode that assemble() refuses (e.g.
  /// masked shift counts) so it can diagnose rather than just reject.
  [[nodiscard]] static bool validate_structure(
      const std::vector<BpfInsn>& code);

  /// Validate and seal `code`. nullopt on any safety violation.
  [[nodiscard]] static std::optional<BpfProgram> assemble(
      std::vector<BpfInsn> code);

  /// Execute over a frame. Out-of-bounds packet loads terminate with drop,
  /// like an aborted XDP program.
  [[nodiscard]] ppe::Verdict run(net::BytesView packet) const;

  [[nodiscard]] std::size_t size() const { return code_.size(); }
  [[nodiscard]] const std::vector<BpfInsn>& code() const { return code_; }

  /// The verdict this program returns for *every* packet, when its first
  /// instruction is already terminal — the degenerate shape the static
  /// verifier flags as a constant stage.
  [[nodiscard]] std::optional<ppe::Verdict> constant_verdict() const;

  /// Config wire format (what a bitstream carries).
  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<BpfProgram> parse(net::BytesView data);

 private:
  explicit BpfProgram(std::vector<BpfInsn> code) : code_(std::move(code)) {}
  std::vector<BpfInsn> code_;
};

/// Tiny program library for common edge filters (and as assembly examples).
namespace bpf_programs {
/// Accept everything (the identity program).
[[nodiscard]] BpfProgram accept_all();
/// Drop IPv4 TCP segments to `dport`, accept the rest.
[[nodiscard]] BpfProgram drop_tcp_dport(std::uint16_t dport);
/// Like drop_tcp_dport, but assumes an option-less IPv4 header (IHL = 5)
/// so the L4 offset is a constant. Trades generality for 5 fewer
/// instructions — the general version's worst-case path exceeds the
/// 64 B-packet cycle budget on the sequential soft core at 10 Gb/s, which
/// the static verifier (rule FSL002) rejects.
[[nodiscard]] BpfProgram drop_tcp_dport_compact(std::uint16_t dport);
/// Accept only IPv4 traffic from `prefix_value`/`prefix_mask` (drop rest).
[[nodiscard]] BpfProgram allow_src_net(std::uint32_t value,
                                       std::uint32_t mask);
/// Punt IPv4 fragments to the control plane, accept the rest.
[[nodiscard]] BpfProgram punt_fragments();
}  // namespace bpf_programs

class BpfFilter final : public ppe::PpeApp {
 public:
  explicit BpfFilter(BpfProgram program = bpf_programs::accept_all());

  [[nodiscard]] std::string name() const override { return "bpf"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  /// Instruction memory in uSRAM plus the sequential core; latency budget
  /// is the program length (one instruction per cycle, hXDP-style). This is
  /// the conservative bound — analysis::BpfVerifier proves the longest
  /// *terminating* path, which the deploy-time FSL002 check uses instead.
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] std::uint64_t pipeline_latency_cycles() const override {
    return std::max<std::uint64_t>(program_.size(), 1);
  }
  [[nodiscard]] net::Bytes serialize_config() const override {
    return program_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  /// Hot-swap the program (a control-plane operation).
  void load(BpfProgram program) { program_ = std::move(program); }
  [[nodiscard]] const BpfProgram& program() const { return program_; }

  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  BpfProgram program_;
  ppe::CounterBank stats_;  // accept / drop / punt
};

}  // namespace flexsfp::apps
