// Tunneling offload (§3: "insert tunneling headers for GRE, VXLAN, or
// IP-in-IP without involving the host"): encapsulate on one direction,
// decapsulate on the other.
#pragma once

#include <cstdint>

#include "net/addresses.hpp"
#include "ppe/app.hpp"
#include "ppe/counters.hpp"

namespace flexsfp::apps {

enum class TunnelType : std::uint8_t {
  gre = 0,
  vxlan = 1,
  ipip = 2,
};

enum class TunnelRole : std::uint8_t {
  encap = 0,
  decap = 1,
};

struct TunnelConfig {
  TunnelType type = TunnelType::gre;
  TunnelRole role = TunnelRole::encap;
  net::Ipv4Address local;   // tunnel source for encap
  net::Ipv4Address remote;  // tunnel destination for encap
  std::uint32_t vni = 0;    // VXLAN only
  net::MacAddress outer_dst;  // VXLAN outer L2
  net::MacAddress outer_src;

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<TunnelConfig> parse(net::BytesView data);
};

class TunnelApp final : public ppe::PpeApp {
 public:
  explicit TunnelApp(TunnelConfig config = {});

  [[nodiscard]] std::string name() const override { return "tunnel"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  [[nodiscard]] const TunnelConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t transformed() const { return stats_.packets(0); }
  [[nodiscard]] std::uint64_t passed() const { return stats_.packets(1); }
  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  TunnelConfig config_;
  ppe::CounterBank stats_;  // 0 transformed, 1 passed-through
};

}  // namespace flexsfp::apps
