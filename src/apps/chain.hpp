// App chaining: compose several packet functions into one PPE pipeline
// (§5.3: bidirectional line rate "keeping chains compact (about 3-4
// stages)"). Stages run in order; the first non-forward verdict wins.
#pragma once

#include <memory>
#include <vector>

#include "ppe/app.hpp"

namespace flexsfp::apps {

class AppChain final : public ppe::PpeApp {
 public:
  AppChain() = default;
  explicit AppChain(std::vector<ppe::PpeAppPtr> stages);

  void append(ppe::PpeAppPtr stage);
  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }
  [[nodiscard]] ppe::PpeApp& stage(std::size_t index) {
    return *stages_.at(index);
  }

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  /// Sum of stage footprints plus inter-stage glue FIFOs.
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  /// Pipeline depths add up stage by stage.
  [[nodiscard]] std::uint64_t pipeline_latency_cycles() const override;
  /// Aggregate view of the whole chain as one stage.
  [[nodiscard]] ppe::StageProfile profile() const override;
  /// One profile per stage, in pipeline order (nested chains flattened).
  [[nodiscard]] std::vector<ppe::StageProfile> stage_profiles() const override;
  /// Stage apps in the same order/flattening as stage_profiles().
  void visit_stages(
      const std::function<void(const ppe::PpeApp&)>& visit) const override;

  // Control-plane ops address tables as "<stage-name>.<table>"; a bare
  // table name is routed to the first stage that owns it.
  [[nodiscard]] std::vector<std::string> table_names() const override;
  bool table_insert(std::string_view table, std::uint64_t key,
                    std::uint64_t value) override;
  bool table_erase(std::string_view table, std::uint64_t key) override;
  [[nodiscard]] std::optional<std::uint64_t> table_lookup(
      std::string_view table, std::uint64_t key) const override;
  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;
  [[nodiscard]] ppe::PpeApp* find_stage(std::string_view stage_name) override;

 private:
  /// Resolve "<stage>.<table>" or bare "<table>" to (stage, local name).
  [[nodiscard]] std::pair<ppe::PpeApp*, std::string_view> resolve(
      std::string_view table) const;

  std::vector<ppe::PpeAppPtr> stages_;
};

}  // namespace flexsfp::apps
