#include "apps/softwire.hpp"

#include <algorithm>
#include <array>

#include "net/builder.hpp"
#include "net/checksum.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

namespace {

// IPv6 fixed-header field offsets relative to the L3 start (hairpinning
// rewrites these in place instead of decap + re-encap).
constexpr std::size_t kV6HopLimit = 7;
constexpr std::size_t kV6Src = 8;
constexpr std::size_t kV6Dst = 24;

std::uint64_t pack_psid_params(PsidParams params) {
  return (std::uint64_t{params.psid_offset} << 8) | params.psid_len;
}

PsidParams unpack_psid_params(std::uint64_t value) {
  return PsidParams{static_cast<std::uint8_t>(value & 0xff),
                    static_cast<std::uint8_t>((value >> 8) & 0xff)};
}

/// The A+P-relevant transport field of a parsed L4 layer: TCP/UDP port, or
/// the identifier of an ICMP echo (the "port" lw4o6 maps echoes by,
/// RFC 7596 §5.2). nullopt when the layer has no mappable field.
std::optional<std::uint16_t> transport_port(const net::IpLayer& layer,
                                            bool source) {
  if (layer.tcp) return source ? layer.tcp->src_port : layer.tcp->dst_port;
  if (layer.udp) return source ? layer.udp->src_port : layer.udp->dst_port;
  if (layer.icmp &&
      (layer.icmp->type == 0 || layer.icmp->type == 8)) {  // echo reply/request
    return static_cast<std::uint16_t>(layer.icmp->rest >> 16);
  }
  return std::nullopt;
}

/// Inner IPv4 packet of a softwire frame (the parser stops at the IPv6
/// next-header, so the tunnel payload is re-parsed here at l3 + 40).
struct InnerV4 {
  net::Ipv4Header ip;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
};

std::optional<InnerV4> parse_inner_ipv4(const net::Bytes& frame,
                                        std::size_t offset) {
  const auto ip = net::Ipv4Header::parse(frame, offset);
  if (!ip) return std::nullopt;
  InnerV4 inner{*ip, std::nullopt, std::nullopt};
  const std::size_t l4 = offset + ip->size();
  switch (static_cast<net::IpProto>(ip->protocol)) {
    case net::IpProto::tcp:
    case net::IpProto::udp:
      if (frame.size() >= l4 + 4) {
        inner.src_port = net::read_be16(frame, l4);
        inner.dst_port = net::read_be16(frame, l4 + 2);
      }
      break;
    case net::IpProto::icmp:
      if (frame.size() >= l4 + 8 && (frame[l4] == 0 || frame[l4] == 8)) {
        const std::uint16_t id = net::read_be16(frame, l4 + 4);
        inner.src_port = id;
        inner.dst_port = id;
      }
      break;
    default:
      break;
  }
  return inner;
}

bool is_fragment(const net::Ipv4Header& ip) {
  return ip.more_fragments || ip.fragment_offset != 0;
}

}  // namespace

// --- LwAftrConfig ----------------------------------------------------------

net::Bytes LwAftrConfig::serialize() const {
  net::Bytes out(35);
  std::copy(aftr_addr.octets().begin(), aftr_addr.octets().end(), out.begin());
  net::write_be32(out, 16, icmp_src.value());
  net::write_be32(out, 20, binding_capacity);
  out[24] = static_cast<std::uint8_t>(miss_action);
  out[25] = hairpin ? 1 : 0;
  out[26] = tunnel_hop_limit;
  net::write_be64(out, 27, b4_prefix_hi);
  return out;
}

std::optional<LwAftrConfig> LwAftrConfig::parse(net::BytesView data) {
  if (data.size() < 35) return std::nullopt;
  if (data[24] > 2 || data[25] > 1) return std::nullopt;
  LwAftrConfig config;
  std::array<std::uint8_t, 16> octets;
  std::copy(data.begin(), data.begin() + 16, octets.begin());
  config.aftr_addr = net::Ipv6Address{octets};
  config.icmp_src = net::Ipv4Address{net::read_be32(data, 16)};
  config.binding_capacity = net::read_be32(data, 20);
  if (config.binding_capacity == 0) return std::nullopt;
  config.miss_action = static_cast<SoftwireMissAction>(data[24]);
  config.hairpin = data[25] != 0;
  config.tunnel_hop_limit = data[26];
  config.b4_prefix_hi = net::read_be64(data, 27);
  return config;
}

// --- LwAftr ----------------------------------------------------------------

LwAftr::LwAftr(LwAftrConfig config)
    : config_(config),
      // Shared-address arithmetic: 32 b IPv4 key -> 16 b (offset, psid_len).
      // Sized like the binding table — worst case every lease has its own
      // address.
      psid_map_("psid_map", config.binding_capacity, 32, 16),
      // One entry per (ipv4, psid) lease: 48 b key -> the subscriber's B4
      // /128. The simulated table stores a slot index; the declared 128-bit
      // value width is what the SRAM entry actually holds.
      binding_("binding", config.binding_capacity, 48, 128),
      stats_("lwaftr_stats", stat_count) {
  b4_slots_.reserve(config.binding_capacity);
}

std::optional<std::uint64_t> LwAftr::match_subscriber(
    net::Ipv4Address addr, std::uint16_t port) const {
  const auto pm = psid_map_.lookup(addr.value());
  if (!pm) return std::nullopt;
  const PsidParams params = unpack_psid_params(*pm);
  if (port_excluded(params, port)) return std::nullopt;
  return binding_.lookup(binding_key(addr, psid_of_port(params, port)));
}

ppe::Verdict LwAftr::miss_verdict(ppe::PacketContext& ctx) {
  stats_.add(stat_unmappable_v4, ctx.packet().size());
  switch (config_.miss_action) {
    case SoftwireMissAction::drop:
      return ppe::Verdict::drop;
    case SoftwireMissAction::punt:
      stats_.add(stat_punted, ctx.packet().size());
      return ppe::Verdict::to_control_plane;
    case SoftwireMissAction::icmp_reject:
      rewrite_as_icmp_unreachable(ctx);
      return ppe::Verdict::forward;
  }
  return ppe::Verdict::drop;
}

void LwAftr::rewrite_as_icmp_unreachable(ppe::PacketContext& ctx) {
  // RFC 7596 §5.2: answer an unmappable IPv4 packet with a destination-
  // unreachable (host unreachable) quoting the offending IP header + 8
  // bytes, sent from the AFTR's own IPv4 address back to the source.
  const auto& parsed = ctx.parsed();
  const std::size_t l3 = parsed.outer.l3_offset;
  const net::Ipv4Header orig = *parsed.outer.ipv4;
  net::Bytes& b = ctx.bytes();

  // Save the quoted bytes before the new headers overwrite them. The quote
  // is at most a maximal (60-byte) IPv4 header + 8 bytes — stack space, so
  // the reject path stays allocation-free.
  std::array<std::uint8_t, 68> quote{};
  const std::size_t quote_len =
      std::min<std::size_t>(orig.size() + 8, b.size() - l3);
  std::copy(b.begin() + static_cast<std::ptrdiff_t>(l3),
            b.begin() + static_cast<std::ptrdiff_t>(l3 + quote_len),
            quote.begin());

  // Turn the frame around at L2.
  std::swap_ranges(b.begin(), b.begin() + 6, b.begin() + 6);

  const std::size_t body = 20 + net::IcmpHeader::size() + quote_len;
  const std::size_t new_size = std::max<std::size_t>(l3 + body, 60);
  b.resize(new_size);
  std::fill(b.begin() + static_cast<std::ptrdiff_t>(l3 + body), b.end(), 0);

  net::Ipv4Header reply;
  reply.total_length = static_cast<std::uint16_t>(body);
  reply.ttl = 64;
  reply.protocol = static_cast<std::uint8_t>(net::IpProto::icmp);
  reply.src = config_.icmp_src;
  reply.dst = orig.src;
  reply.checksum = reply.compute_checksum();
  reply.serialize_to(b, l3);

  net::IcmpHeader icmp;
  icmp.type = 3;  // destination unreachable
  icmp.code = 1;  // host unreachable
  icmp.serialize_to(b, l3 + 20);
  std::copy(quote.begin(), quote.begin() + static_cast<std::ptrdiff_t>(quote_len),
            b.begin() + static_cast<std::ptrdiff_t>(l3 + 28));
  const std::uint16_t checksum = net::internet_checksum(
      net::BytesView{b.data() + l3 + 20, net::IcmpHeader::size() + quote_len});
  net::write_be16(b, l3 + 22, checksum);

  ctx.invalidate_parse();
  stats_.add(stat_icmp_rejected, ctx.packet().size());
}

ppe::Verdict LwAftr::process_ipv4(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  const net::Ipv4Header ip = *parsed.outer.ipv4;
  if (is_fragment(ip)) {
    // Per-port mapping needs the transport header; lw4o6 AFTRs are expected
    // to reassemble or reject — this datapath rejects (DF-everywhere edge).
    stats_.add(stat_fragments_rejected, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  if (parsed.outer.icmp && parsed.outer.icmp->type != 0 &&
      parsed.outer.icmp->type != 8) {
    // ICMP errors need the quoted packet's ports to map — control plane.
    stats_.add(stat_punted, ctx.packet().size());
    return ppe::Verdict::to_control_plane;
  }
  const auto port = transport_port(parsed.outer, /*source=*/false);
  if (!port) return miss_verdict(ctx);
  const auto slot = match_subscriber(ip.dst, *port);
  if (!slot) return miss_verdict(ctx);
  if (!net::encapsulate_ipv4_in_ipv6(
          ctx.bytes(), config_.aftr_addr,
          b4_slots_[static_cast<std::size_t>(*slot)],
          config_.tunnel_hop_limit)) {
    stats_.add(stat_malformed, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  ctx.invalidate_parse();
  stats_.add(stat_encapsulated, ctx.packet().size());
  return ppe::Verdict::forward;
}

ppe::Verdict LwAftr::process_ipv6(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  const net::Ipv6Header ip6 = *parsed.outer.ipv6;
  if (ip6.dst != config_.aftr_addr ||
      ip6.next_header != static_cast<std::uint8_t>(net::IpProto::ipv4_encap)) {
    stats_.add(stat_passthrough, ctx.packet().size());
    return ppe::Verdict::forward;
  }
  const std::size_t l3 = parsed.outer.l3_offset;
  const auto inner = parse_inner_ipv4(ctx.bytes(), l3 + net::Ipv6Header::size());
  if (!inner) {
    stats_.add(stat_malformed, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  if (is_fragment(inner->ip)) {
    stats_.add(stat_fragments_rejected, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  // Anti-spoof (RFC 7596 §5.1): the inner source (address, port) must map
  // to a lease whose B4 is exactly the outer IPv6 source.
  const auto pm = psid_map_.lookup(inner->ip.src.value());
  if (!pm || !inner->src_port) {
    stats_.add(stat_antispoof_dropped, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  const PsidParams params = unpack_psid_params(*pm);
  const std::uint16_t sport = *inner->src_port;
  if (port_excluded(params, sport)) {
    stats_.add(stat_antispoof_dropped, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  const auto slot =
      binding_.lookup(binding_key(inner->ip.src, psid_of_port(params, sport)));
  if (!slot || b4_slots_[static_cast<std::size_t>(*slot)] != ip6.src) {
    stats_.add(stat_antispoof_dropped, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  if (config_.hairpin && inner->dst_port) {
    if (const auto peer = match_subscriber(inner->ip.dst, *inner->dst_port)) {
      // Subscriber-to-subscriber: re-aim the existing tunnel header at the
      // peer's B4 instead of decapsulating — three in-place field writes.
      net::Bytes& b = ctx.bytes();
      net::write_u8(b, l3 + kV6HopLimit, config_.tunnel_hop_limit);
      const auto& peer_b4 = b4_slots_[static_cast<std::size_t>(*peer)];
      std::copy(config_.aftr_addr.octets().begin(),
                config_.aftr_addr.octets().end(),
                b.begin() + static_cast<std::ptrdiff_t>(l3 + kV6Src));
      std::copy(peer_b4.octets().begin(), peer_b4.octets().end(),
                b.begin() + static_cast<std::ptrdiff_t>(l3 + kV6Dst));
      ctx.invalidate_parse();
      stats_.add(stat_hairpinned, ctx.packet().size());
      return ppe::Verdict::forward;
    }
  }
  if (!net::decapsulate_ipv4_in_ipv6(ctx.bytes())) {
    stats_.add(stat_malformed, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  ctx.invalidate_parse();
  stats_.add(stat_decapsulated, ctx.packet().size());
  return ppe::Verdict::forward;
}

ppe::Verdict LwAftr::process(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  if (!parsed.ok()) {
    stats_.add(stat_malformed, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  if (parsed.outer.ipv6) return process_ipv6(ctx);
  if (parsed.outer.ipv4) return process_ipv4(ctx);
  stats_.add(stat_passthrough, ctx.packet().size());
  return ppe::Verdict::forward;
}

hw::ResourceBreakdown LwAftr::resource_breakdown(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceBreakdown breakdown;
  // Eth (14) + outer IPv6 (40) + inner/outer IPv4 (20) + L4 ports/id (4).
  breakdown.add("parser", RM::parser(78, w));
  breakdown.add("psid_map", RM::exact_match_table(config_.binding_capacity,
                                                  psid_map_.key_bits(),
                                                  psid_map_.value_bits()));
  breakdown.add("binding_table",
                RM::exact_match_table(config_.binding_capacity,
                                      binding_.key_bits(),
                                      binding_.value_bits()));
  // 40-byte shim insert/remove plus the hairpin address rewrites.
  breakdown.add("shim_edit", RM::field_edit_unit(3, w));
  breakdown.add("icmp_gen", RM::checksum_patch_unit());
  breakdown.add("deparser", RM::deparser(w));
  breakdown.add("csr", RM::csr_block(40));
  breakdown.add("ingress_fifo", RM::stream_fifo(128, 72));
  breakdown.add("egress_fifo", RM::stream_fifo(128, 72));
  breakdown.add("lookup_fifo", RM::stream_fifo(128, 72));
  breakdown.add("pipeline_fsm", RM::control_fsm(24, w));
  return breakdown;
}

hw::ResourceUsage LwAftr::resource_usage(
    const hw::DatapathConfig& datapath) const {
  return resource_breakdown(datapath).total();
}

ppe::StageProfile LwAftr::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_set({HeaderKind::ethernet, HeaderKind::ipv4,
                                   HeaderKind::ipv6, HeaderKind::tcp,
                                   HeaderKind::udp, HeaderKind::icmp});
  // Hairpin rewrites the IPv6 tunnel header; the ICMP reject path rewrites
  // Ethernet + IPv4 and emits a fresh ICMP header.
  profile.writes = ppe::header_set({HeaderKind::ethernet, HeaderKind::ipv4,
                                    HeaderKind::ipv6, HeaderKind::icmp});
  profile.produces = ppe::header_set({HeaderKind::ipv6, HeaderKind::icmp});
  profile.consumes = ppe::header_set({HeaderKind::ipv6});
  profile.tables.push_back(ppe::TableProfile{
      .name = psid_map_.name(),
      .kind = ppe::TableKind::exact_match,
      .capacity = psid_map_.capacity(),
      .key_bits = psid_map_.key_bits(),
      .value_bits = psid_map_.value_bits(),
      .key_sources = ppe::header_bit(HeaderKind::ipv4)});
  profile.tables.push_back(ppe::TableProfile{
      .name = binding_.name(),
      .kind = ppe::TableKind::exact_match,
      .capacity = binding_.capacity(),
      .key_bits = binding_.key_bits(),
      .value_bits = binding_.value_bits(),
      .key_sources = ppe::header_set({HeaderKind::ipv4, HeaderKind::tcp,
                                      HeaderKind::udp, HeaderKind::icmp})});
  profile.counter_banks.push_back(
      {"lwaftr_stats", stats_.size(), stat_count - 1});
  // Two dependent SRAM probes (psid_map then binding) plus the 40-byte shim
  // shift, which realigns the whole stream behind it.
  profile.match_action_cycles = 3;
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

bool LwAftr::add_binding(net::Ipv4Address ipv4, std::uint16_t psid,
                         PsidParams params, const net::Ipv6Address& b4) {
  if (!psid_params_valid(params)) return false;
  if (params.psid_len < 16 &&
      psid >= (std::uint32_t{1} << params.psid_len)) {
    return false;
  }
  const auto pm = psid_map_.lookup(ipv4.value());
  const std::uint64_t packed = pack_psid_params(params);
  // Every PSID of a shared address must use the same port arithmetic.
  if (pm && (*pm & 0xffff) != packed) return false;

  const std::uint64_t key = binding_key(ipv4, psid);
  if (const auto slot = binding_.lookup(key)) {
    b4_slots_[static_cast<std::size_t>(*slot)] = b4;  // refresh the lease
    return true;
  }
  const bool reuse = !free_slots_.empty();
  if (!reuse && b4_slots_.size() >= config_.binding_capacity) return false;
  const std::uint32_t slot =
      reuse ? free_slots_.back() : static_cast<std::uint32_t>(b4_slots_.size());

  const std::uint64_t refcount = pm ? (*pm >> 16) : 0;
  if (!psid_map_.insert(ipv4.value(), ((refcount + 1) << 16) | packed)) {
    return false;
  }
  if (!binding_.insert(key, slot)) {
    // Roll the refcount back so a bucket-overflow reject leaves no trace.
    if (pm) {
      psid_map_.insert(ipv4.value(), *pm);
    } else {
      psid_map_.erase(ipv4.value());
    }
    return false;
  }
  if (reuse) {
    free_slots_.pop_back();
    b4_slots_[slot] = b4;
  } else {
    b4_slots_.push_back(b4);
  }
  return true;
}

bool LwAftr::remove_binding(net::Ipv4Address ipv4, std::uint16_t psid) {
  const std::uint64_t key = binding_key(ipv4, psid);
  const auto slot = binding_.lookup(key);
  if (!slot) return false;
  binding_.erase(key);
  free_slots_.push_back(static_cast<std::uint32_t>(*slot));
  if (const auto pm = psid_map_.lookup(ipv4.value())) {
    const std::uint64_t refcount = *pm >> 16;
    if (refcount <= 1) {
      psid_map_.erase(ipv4.value());
    } else {
      psid_map_.insert(ipv4.value(),
                       ((refcount - 1) << 16) | (*pm & 0xffff));
    }
  }
  return true;
}

std::optional<net::Ipv6Address> LwAftr::b4_for(net::Ipv4Address ipv4,
                                               std::uint16_t psid) const {
  const auto slot = binding_.lookup(binding_key(ipv4, psid));
  if (!slot) return std::nullopt;
  return b4_slots_[static_cast<std::size_t>(*slot)];
}

std::optional<PsidParams> LwAftr::params_for(net::Ipv4Address ipv4) const {
  const auto pm = psid_map_.lookup(ipv4.value());
  if (!pm) return std::nullopt;
  return unpack_psid_params(*pm);
}

bool LwAftr::table_insert(std::string_view table, std::uint64_t key,
                          std::uint64_t value) {
  if (table == "psid_map") {
    return psid_map_.insert(key & 0xffffffffull, value);
  }
  if (table != "binding") return false;
  const net::Ipv4Address ipv4{static_cast<std::uint32_t>(key >> 16)};
  const auto pm = psid_map_.lookup(ipv4.value());
  if (!pm) return false;  // provision psid_map first
  return add_binding(ipv4, static_cast<std::uint16_t>(key & 0xffff),
                     unpack_psid_params(*pm),
                     net::Ipv6Address::from_u64_pair(config_.b4_prefix_hi,
                                                     value));
}

bool LwAftr::table_erase(std::string_view table, std::uint64_t key) {
  if (table == "psid_map") return psid_map_.erase(key & 0xffffffffull);
  if (table != "binding") return false;
  return remove_binding(net::Ipv4Address{static_cast<std::uint32_t>(key >> 16)},
                        static_cast<std::uint16_t>(key & 0xffff));
}

std::optional<std::uint64_t> LwAftr::table_lookup(std::string_view table,
                                                  std::uint64_t key) const {
  if (table == "psid_map") return psid_map_.lookup(key & 0xffffffffull);
  if (table != "binding") return std::nullopt;
  const auto slot = binding_.lookup(key);
  if (!slot) return std::nullopt;
  return b4_slots_[static_cast<std::size_t>(*slot)].to_u64_pair().second;
}

std::vector<ppe::CounterSnapshot> LwAftr::counters() const {
  std::vector<ppe::CounterSnapshot> out;
  out.reserve(stat_count);
  for (std::size_t i = 0; i < stat_count; ++i) {
    out.push_back({"lwaftr_stats", i, stats_.packets(i), stats_.bytes(i)});
  }
  return out;
}

// --- LwB4Config ------------------------------------------------------------

net::Bytes LwB4Config::serialize() const {
  net::Bytes out(41);
  net::write_be32(out, 0, ipv4.value());
  net::write_be16(out, 4, psid);
  out[6] = params.psid_len;
  out[7] = params.psid_offset;
  std::copy(b4_addr.octets().begin(), b4_addr.octets().end(), out.begin() + 8);
  std::copy(aftr_addr.octets().begin(), aftr_addr.octets().end(),
            out.begin() + 24);
  out[40] = tunnel_hop_limit;
  return out;
}

std::optional<LwB4Config> LwB4Config::parse(net::BytesView data) {
  if (data.size() < 41) return std::nullopt;
  LwB4Config config;
  config.ipv4 = net::Ipv4Address{net::read_be32(data, 0)};
  config.psid = net::read_be16(data, 4);
  config.params = PsidParams{data[6], data[7]};
  if (!psid_params_valid(config.params)) return std::nullopt;
  if (config.params.psid_len < 16 &&
      config.psid >= (std::uint32_t{1} << config.params.psid_len)) {
    return std::nullopt;
  }
  std::array<std::uint8_t, 16> octets;
  std::copy(data.begin() + 8, data.begin() + 24, octets.begin());
  config.b4_addr = net::Ipv6Address{octets};
  std::copy(data.begin() + 24, data.begin() + 40, octets.begin());
  config.aftr_addr = net::Ipv6Address{octets};
  config.tunnel_hop_limit = data[40];
  return config;
}

// --- LwB4 ------------------------------------------------------------------

LwB4::LwB4(LwB4Config config)
    : config_(config), stats_("lwb4_stats", stat_count) {}

ppe::Verdict LwB4::process(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  if (!parsed.ok()) {
    stats_.add(stat_malformed, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  if (parsed.outer.ipv4) {
    const net::Ipv4Header ip = *parsed.outer.ipv4;
    if (ip.src != config_.ipv4) {
      stats_.add(stat_passthrough, ctx.packet().size());
      return ppe::Verdict::forward;
    }
    if (is_fragment(ip)) {
      stats_.add(stat_malformed, ctx.packet().size());
      return ppe::Verdict::drop;
    }
    const auto port = transport_port(parsed.outer, /*source=*/true);
    if (!port) {
      stats_.add(stat_malformed, ctx.packet().size());
      return ppe::Verdict::drop;
    }
    if (!port_in_set(config_.params, config_.psid, *port)) {
      // The NAPT44 in front of us leaked a port outside the lease — this is
      // the port-set-exhaustion signal the bench provokes.
      stats_.add(stat_port_out_of_set, ctx.packet().size());
      return ppe::Verdict::drop;
    }
    if (!net::encapsulate_ipv4_in_ipv6(ctx.bytes(), config_.b4_addr,
                                       config_.aftr_addr,
                                       config_.tunnel_hop_limit)) {
      stats_.add(stat_malformed, ctx.packet().size());
      return ppe::Verdict::drop;
    }
    ctx.invalidate_parse();
    stats_.add(stat_encapsulated, ctx.packet().size());
    return ppe::Verdict::forward;
  }
  if (parsed.outer.ipv6) {
    const net::Ipv6Header ip6 = *parsed.outer.ipv6;
    if (ip6.dst != config_.b4_addr ||
        ip6.next_header !=
            static_cast<std::uint8_t>(net::IpProto::ipv4_encap)) {
      stats_.add(stat_passthrough, ctx.packet().size());
      return ppe::Verdict::forward;
    }
    const auto inner = parse_inner_ipv4(
        ctx.bytes(), parsed.outer.l3_offset + net::Ipv6Header::size());
    if (!inner) {
      stats_.add(stat_malformed, ctx.packet().size());
      return ppe::Verdict::drop;
    }
    // RFC 7596 §6: the B4 validates the downstream destination port against
    // its own restricted set before handing the packet to the NAPT44.
    if (!is_fragment(inner->ip) &&
        (!inner->dst_port ||
         !port_in_set(config_.params, config_.psid, *inner->dst_port))) {
      stats_.add(stat_port_out_of_set, ctx.packet().size());
      return ppe::Verdict::drop;
    }
    if (!net::decapsulate_ipv4_in_ipv6(ctx.bytes())) {
      stats_.add(stat_malformed, ctx.packet().size());
      return ppe::Verdict::drop;
    }
    ctx.invalidate_parse();
    stats_.add(stat_decapsulated, ctx.packet().size());
    return ppe::Verdict::forward;
  }
  stats_.add(stat_passthrough, ctx.packet().size());
  return ppe::Verdict::forward;
}

hw::ResourceUsage LwB4::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceBreakdown breakdown;
  // Eth (14) + IPv6 (40) + IPv4 (20) + L4 ports (4); the lease is pure
  // configuration — registers, no SRAM table.
  breakdown.add("parser", RM::parser(78, w));
  breakdown.add("shim_edit", RM::field_edit_unit(2, w));
  breakdown.add("deparser", RM::deparser(w));
  breakdown.add("csr", RM::csr_block(20));
  breakdown.add("ingress_fifo", RM::stream_fifo(128, 72));
  breakdown.add("egress_fifo", RM::stream_fifo(128, 72));
  breakdown.add("pipeline_fsm", RM::control_fsm(12, w));
  return breakdown.total();
}

ppe::StageProfile LwB4::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_set({HeaderKind::ethernet, HeaderKind::ipv4,
                                   HeaderKind::ipv6, HeaderKind::tcp,
                                   HeaderKind::udp, HeaderKind::icmp});
  profile.writes = ppe::header_set({HeaderKind::ipv6});
  profile.produces = ppe::header_set({HeaderKind::ipv6});
  profile.consumes = ppe::header_set({HeaderKind::ipv6});
  profile.counter_banks.push_back({"lwb4_stats", stats_.size(), stat_count - 1});
  // Register compare + the 40-byte shim shift.
  profile.match_action_cycles = 2;
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

std::vector<ppe::CounterSnapshot> LwB4::counters() const {
  std::vector<ppe::CounterSnapshot> out;
  out.reserve(stat_count);
  for (std::size_t i = 0; i < stat_count; ++i) {
    out.push_back({"lwb4_stats", i, stats_.packets(i), stats_.bytes(i)});
  }
  return out;
}

namespace {
const bool registered_aftr = ppe::register_ppe_app(
    "lwaftr", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<LwAftr>();
      const auto parsed = LwAftrConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<LwAftr>(*parsed);
    });
const bool registered_b4 = ppe::register_ppe_app(
    "lwb4", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<LwB4>();
      const auto parsed = LwB4Config::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<LwB4>(*parsed);
    });
}  // namespace

/// Force-link hook used by register_builtin_apps().
void link_softwire_apps() {
  (void)registered_aftr;
  (void)registered_b4;
}

}  // namespace flexsfp::apps
