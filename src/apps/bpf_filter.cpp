#include "apps/bpf_filter.hpp"

#include <algorithm>

#include "hw/resource_model.hpp"
#include "net/headers.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

namespace {

bool is_terminal(BpfOp op) {
  return op == BpfOp::ret_accept || op == BpfOp::ret_drop ||
         op == BpfOp::ret_punt;
}

bool is_jump(BpfOp op) {
  return op == BpfOp::jeq || op == BpfOp::jgt || op == BpfOp::jge ||
         op == BpfOp::jset || op == BpfOp::ja;
}

}  // namespace

bool BpfProgram::validate_structure(const std::vector<BpfInsn>& code) {
  if (code.empty() || code.size() > max_instructions) return false;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const BpfInsn& insn = code[pc];
    if (static_cast<std::uint8_t>(insn.op) >
        static_cast<std::uint8_t>(BpfOp::ret_punt)) {
      return false;
    }
    if (is_jump(insn.op)) {
      // Forward-only, in-range on both edges (guarantees termination).
      const std::size_t true_target =
          pc + 1 + (insn.op == BpfOp::ja ? insn.k : insn.jt);
      if (true_target >= code.size()) return false;
      if (insn.op != BpfOp::ja) {
        const std::size_t false_target = pc + 1 + insn.jf;
        if (false_target >= code.size()) return false;
      }
    } else if (!is_terminal(insn.op) && pc + 1 >= code.size()) {
      return false;  // falling off the end
    }
  }
  return is_terminal(code.back().op) || is_jump(code.back().op);
}

std::optional<BpfProgram> BpfProgram::assemble(std::vector<BpfInsn> code) {
  if (!validate_structure(code)) return std::nullopt;
  for (const BpfInsn& insn : code) {
    // The interpreter masks shift counts with `& 31`; a count >= 32 never
    // means what the author wrote, so refuse it instead of wrapping.
    if ((insn.op == BpfOp::alu_lsh || insn.op == BpfOp::alu_rsh) &&
        insn.k >= 32) {
      return std::nullopt;
    }
  }
  return BpfProgram(std::move(code));
}

std::optional<ppe::Verdict> BpfProgram::constant_verdict() const {
  if (code_.empty()) return std::nullopt;
  switch (code_.front().op) {
    case BpfOp::ret_accept: return ppe::Verdict::forward;
    case BpfOp::ret_drop: return ppe::Verdict::drop;
    case BpfOp::ret_punt: return ppe::Verdict::to_control_plane;
    default: return std::nullopt;
  }
}

ppe::Verdict BpfProgram::run(net::BytesView packet) const {
  std::uint32_t a = 0;
  std::uint32_t x = 0;
  std::size_t pc = 0;

  // Forward-only jumps guarantee at most size() steps.
  for (std::size_t steps = 0; steps <= code_.size(); ++steps) {
    const BpfInsn& insn = code_[pc];
    std::size_t next = pc + 1;
    switch (insn.op) {
      case BpfOp::ld_imm: a = insn.k; break;
      case BpfOp::ld_len: a = static_cast<std::uint32_t>(packet.size()); break;
      case BpfOp::ld_abs_u8:
      case BpfOp::ld_ind_u8: {
        const std::size_t at =
            insn.k + (insn.op == BpfOp::ld_ind_u8 ? x : 0);
        if (at + 1 > packet.size()) return ppe::Verdict::drop;
        a = packet[at];
        break;
      }
      case BpfOp::ld_abs_u16:
      case BpfOp::ld_ind_u16: {
        const std::size_t at =
            insn.k + (insn.op == BpfOp::ld_ind_u16 ? x : 0);
        if (at + 2 > packet.size()) return ppe::Verdict::drop;
        a = net::read_be16(packet, at);
        break;
      }
      case BpfOp::ld_abs_u32:
      case BpfOp::ld_ind_u32: {
        const std::size_t at =
            insn.k + (insn.op == BpfOp::ld_ind_u32 ? x : 0);
        if (at + 4 > packet.size()) return ppe::Verdict::drop;
        a = net::read_be32(packet, at);
        break;
      }
      case BpfOp::ldx_imm: x = insn.k; break;
      case BpfOp::tax: x = a; break;
      case BpfOp::txa: a = x; break;
      case BpfOp::alu_add: a += insn.k; break;
      case BpfOp::alu_sub: a -= insn.k; break;
      case BpfOp::alu_and: a &= insn.k; break;
      case BpfOp::alu_or: a |= insn.k; break;
      case BpfOp::alu_lsh: a <<= (insn.k & 31); break;
      case BpfOp::alu_rsh: a >>= (insn.k & 31); break;
      case BpfOp::alu_add_x: a += x; break;
      case BpfOp::jeq: next += (a == insn.k) ? insn.jt : insn.jf; break;
      case BpfOp::jgt: next += (a > insn.k) ? insn.jt : insn.jf; break;
      case BpfOp::jge: next += (a >= insn.k) ? insn.jt : insn.jf; break;
      case BpfOp::jset:
        next += ((a & insn.k) != 0) ? insn.jt : insn.jf;
        break;
      case BpfOp::ja: next += insn.k; break;
      case BpfOp::ret_accept: return ppe::Verdict::forward;
      case BpfOp::ret_drop: return ppe::Verdict::drop;
      case BpfOp::ret_punt: return ppe::Verdict::to_control_plane;
    }
    pc = next;
  }
  return ppe::Verdict::drop;  // unreachable for validated programs
}

net::Bytes BpfProgram::serialize() const {
  net::Bytes out(2 + code_.size() * 7);
  net::write_be16(out, 0, static_cast<std::uint16_t>(code_.size()));
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const std::size_t at = 2 + i * 7;
    out[at] = static_cast<std::uint8_t>(code_[i].op);
    net::write_be32(out, at + 1, code_[i].k);
    out[at + 5] = code_[i].jt;
    out[at + 6] = code_[i].jf;
  }
  return out;
}

std::optional<BpfProgram> BpfProgram::parse(net::BytesView data) {
  // A hostile mgmt-frame bitstream gets no benefit of the doubt: exact
  // framing, explicit opcode range check before the enum cast, then the
  // full assemble()-level validation.
  if (data.size() < 2) return std::nullopt;
  const std::size_t count = net::read_be16(data, 0);
  if (data.size() != 2 + count * 7) return std::nullopt;
  std::vector<BpfInsn> code(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t at = 2 + i * 7;
    if (data[at] > static_cast<std::uint8_t>(BpfOp::ret_punt)) {
      return std::nullopt;  // out-of-range opcode byte
    }
    code[i].op = static_cast<BpfOp>(data[at]);
    code[i].k = net::read_be32(data, at + 1);
    code[i].jt = data[at + 5];
    code[i].jf = data[at + 6];
  }
  return assemble(std::move(code));
}

namespace bpf_programs {

BpfProgram accept_all() {
  return *BpfProgram::assemble({{BpfOp::ret_accept, 0, 0, 0}});
}

BpfProgram drop_tcp_dport(std::uint16_t dport) {
  // Assumes untagged Ethernet/IPv4 (offsets 12=ethertype, 14=ip, 23=proto).
  return *BpfProgram::assemble({
      {BpfOp::ld_abs_u16, 12, 0, 0},           // 0: A = ethertype
      {BpfOp::jeq, 0x0800, 0, 10},             // 1: IPv4? else accept@12
      {BpfOp::ld_abs_u8, 23, 0, 0},            // 2: A = protocol
      {BpfOp::jeq, 6, 0, 8},                   // 3: TCP? else accept@12
      {BpfOp::ld_abs_u8, 14, 0, 0},            // 4: A = ver/ihl
      {BpfOp::alu_and, 0x0f, 0, 0},            // 5: A = ihl (words)
      {BpfOp::alu_lsh, 2, 0, 0},               // 6: A = ihl*4
      {BpfOp::alu_add, 14, 0, 0},              // 7: A = L4 offset
      {BpfOp::tax, 0, 0, 0},                   // 8: X = L4 offset
      {BpfOp::ld_ind_u16, 2, 0, 0},            // 9: A = dst port
      {BpfOp::jeq, dport, 0, 1},               // 10: match? else accept@12
      {BpfOp::ret_drop, 0, 0, 0},              // 11
      {BpfOp::ret_accept, 0, 0, 0},            // 12
  });
}

BpfProgram drop_tcp_dport_compact(std::uint16_t dport) {
  // Fixed offsets (12=ethertype, 23=proto, 36=dst port with IHL=5): 8
  // instructions, inside the 11-cycle budget a 64 B packet leaves at
  // 10 Gb/s on the 64 b x 156.25 MHz datapath.
  return *BpfProgram::assemble({
      {BpfOp::ld_abs_u16, 12, 0, 0},  // 0: A = ethertype
      {BpfOp::jeq, 0x0800, 0, 5},     // 1: IPv4? else accept@7
      {BpfOp::ld_abs_u8, 23, 0, 0},   // 2: A = protocol
      {BpfOp::jeq, 6, 0, 3},          // 3: TCP? else accept@7
      {BpfOp::ld_abs_u16, 36, 0, 0},  // 4: A = dst port (14 + 20 + 2)
      {BpfOp::jeq, dport, 0, 1},      // 5: match? else accept@7
      {BpfOp::ret_drop, 0, 0, 0},     // 6
      {BpfOp::ret_accept, 0, 0, 0},   // 7
  });
}

BpfProgram allow_src_net(std::uint32_t value, std::uint32_t mask) {
  return *BpfProgram::assemble({
      {BpfOp::ld_abs_u16, 12, 0, 0},     // ethertype
      {BpfOp::jeq, 0x0800, 0, 3},        // non-IPv4 -> drop@5
      {BpfOp::ld_abs_u32, 26, 0, 0},     // src address
      {BpfOp::alu_and, mask, 0, 0},
      {BpfOp::jeq, value & mask, 1, 0},  // match -> accept@6
      {BpfOp::ret_drop, 0, 0, 0},
      {BpfOp::ret_accept, 0, 0, 0},
  });
}

BpfProgram punt_fragments() {
  return *BpfProgram::assemble({
      {BpfOp::ld_abs_u16, 12, 0, 0},
      {BpfOp::jeq, 0x0800, 0, 2},       // non-IPv4 -> accept@4
      {BpfOp::ld_abs_u16, 20, 0, 0},    // flags + fragment offset
      {BpfOp::jset, 0x3fff, 1, 0},      // MF or offset != 0 -> punt@5
      {BpfOp::ret_accept, 0, 0, 0},
      {BpfOp::ret_punt, 0, 0, 0},
  });
}

}  // namespace bpf_programs

BpfFilter::BpfFilter(BpfProgram program)
    : program_(std::move(program)), stats_("bpf_stats", 3) {}

ppe::Verdict BpfFilter::process(ppe::PacketContext& ctx) {
  const ppe::Verdict verdict = program_.run(ctx.packet().data());
  switch (verdict) {
    case ppe::Verdict::forward: stats_.add(0, ctx.packet().size()); break;
    case ppe::Verdict::drop: stats_.add(1, ctx.packet().size()); break;
    case ppe::Verdict::to_control_plane:
      stats_.add(2, ctx.packet().size());
      break;
  }
  return verdict;
}

hw::ResourceUsage BpfFilter::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  // Sequential core: fetch/decode/ALU (hXDP-like, heavily simplified) plus
  // instruction memory (56 bits per instruction, uSRAM-resident) and a
  // packet-word access port.
  usage += hw::ResourceUsage{3200, 2400, 0, 0};  // the core
  usage.usram_blocks +=
      hw::usram_blocks_for_bits(program_.size() * 56);
  usage += RM::stream_fifo(128, 72);
  usage += RM::stream_fifo(128, 72);
  usage += RM::csr_block(8);
  usage += RM::control_fsm(6, w);
  return usage;
}

std::vector<ppe::CounterSnapshot> BpfFilter::counters() const {
  return {
      {"bpf_stats", 0, stats_.packets(0), stats_.bytes(0)},
      {"bpf_stats", 1, stats_.packets(1), stats_.bytes(1)},
      {"bpf_stats", 2, stats_.packets(2), stats_.bytes(2)},
  };
}

ppe::StageProfile BpfFilter::profile() const {
  ppe::StageProfile profile;
  profile.stage = name();
  // Absolute/indexed byte loads can touch any layer of the frame.
  profile.reads = ppe::wire_header_set();
  // Sequential soft core, one instruction per cycle (hXDP-style): the
  // program length is per-packet occupancy, not overlapped pipeline depth.
  profile.match_action_cycles = std::max<std::uint64_t>(program_.size(), 1);
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  profile.constant_verdict = program_.constant_verdict();
  profile.counter_banks.push_back({"bpf_stats", stats_.size(), 2});
  return profile;
}

namespace {
const bool registered = ppe::register_ppe_app(
    "bpf", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<BpfFilter>();
      auto program = BpfProgram::parse(config);
      if (!program) return nullptr;
      return std::make_unique<BpfFilter>(std::move(*program));
    });
}  // namespace

void link_bpf_app() { (void)registered; }

}  // namespace flexsfp::apps
