#include "apps/nat.hpp"

#include <algorithm>

#include "net/builder.hpp"
#include "net/checksum.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

namespace {

// Byte-peek classification for the batched fast path. kSlowPath means "use
// the full parser"; the fast shapes are frames where parse_packet is
// GUARANTEED to succeed with fixed offsets (l3 = 14, l4 = 34): untagged
// Ethernet + IPv4 (version 4, ihl 5, not a fragment) carrying either TCP
// with a 20-byte header or non-VXLAN UDP, with every header fully present.
// Anything else — VLAN tags, IPv6, options, fragments, GRE/ICMP/other
// protocols, VXLAN's UDP port, truncations — falls back to the parser, so
// the fast path can never classify a frame differently than process().
constexpr std::uint8_t kSlowPath = 0;
constexpr std::uint8_t kFastTcp = 1;
constexpr std::uint8_t kFastUdp = 2;

std::uint8_t fast_path_shape(const net::Bytes& b) {
  if (b.size() < 14 + 20) return kSlowPath;
  if (b[12] != 0x08 || b[13] != 0x00) return kSlowPath;  // not plain IPv4
  if (b[14] != 0x45) return kSlowPath;  // version 4, ihl 5 (no options)
  if ((b[20] & 0x3f) != 0 || b[21] != 0) return kSlowPath;  // MF/fragment
  const std::uint8_t proto = b[23];
  if (proto == 6) {
    if (b.size() < 34 + 20) return kSlowPath;
    if ((b[34 + 12] >> 4) != 5) return kSlowPath;  // TCP options present
    return kFastTcp;
  }
  if (proto == 17) {
    if (b.size() < 34 + 8) return kSlowPath;
    if (net::read_be16(b, 34 + 2) == net::VxlanHeader::udp_port) {
      return kSlowPath;  // parse_packet would attempt VXLAN decap
    }
    return kFastUdp;
  }
  return kSlowPath;
}

}  // namespace

net::Bytes NatConfig::serialize() const {
  net::Bytes out(6);
  out[0] = static_cast<std::uint8_t>(direction);
  out[1] = static_cast<std::uint8_t>(miss_action);
  net::write_be32(out, 2, table_capacity);
  return out;
}

std::optional<NatConfig> NatConfig::parse(net::BytesView data) {
  if (data.size() < 6) return std::nullopt;
  if (data[0] > 1 || data[1] > 2) return std::nullopt;
  NatConfig config;
  config.direction = static_cast<NatDirection>(data[0]);
  config.miss_action = static_cast<NatMissAction>(data[1]);
  config.table_capacity = net::read_be32(data, 2);
  if (config.table_capacity == 0) return std::nullopt;
  return config;
}

StaticNat::StaticNat(NatConfig config)
    : config_(config),
      // Entry layout: 32 b key (IPv4 address), 64 b value (translated
      // address + metadata), +4 valid/version = 100 bits/entry -> the
      // paper's 160 LSRAM blocks at 32,768 entries.
      table_("nat", config.table_capacity, 32, 64),
      stats_("nat_stats", 3) {}

ppe::Verdict StaticNat::process(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  if (!parsed.ok() || !parsed.outer.ipv4) {
    stats_.add(2, ctx.packet().size());
    return ppe::Verdict::forward;  // NAT is IPv4-only; pass others through
  }
  const net::Ipv4Address match_addr = config_.direction == NatDirection::source
                                          ? parsed.outer.ipv4->src
                                          : parsed.outer.ipv4->dst;
  const auto hit = table_.lookup(match_addr.value());
  if (!hit) {
    stats_.add(1, ctx.packet().size());
    switch (config_.miss_action) {
      case NatMissAction::forward: return ppe::Verdict::forward;
      case NatMissAction::drop: return ppe::Verdict::drop;
      case NatMissAction::punt: return ppe::Verdict::to_control_plane;
    }
    return ppe::Verdict::forward;
  }

  const net::Ipv4Address translated{static_cast<std::uint32_t>(*hit)};
  const bool rewritten =
      config_.direction == NatDirection::source
          ? net::rewrite_ipv4_src(ctx.bytes(), parsed, translated)
          : net::rewrite_ipv4_dst(ctx.bytes(), parsed, translated);
  if (rewritten) {
    ctx.invalidate_parse();
    stats_.add(0, ctx.packet().size());
  }
  return ppe::Verdict::forward;
}

void StaticNat::process_batch(ppe::PacketContext* const* ctxs,
                              ppe::Verdict* out, std::size_t n) {
  // Chunked to a fixed stack footprint; each chunk runs three phases —
  // parse/key-extract (prefetching the next frame's bytes), one SoA table
  // probe over the gathered keys, then the per-packet verdict/rewrite.
  // Every per-packet effect (counters, byte edits, verdict) is exactly the
  // one process() produces, so scalar and batched runs are bit-identical.
  constexpr std::size_t kChunk = 64;
  const std::size_t addr_offset =
      config_.direction == NatDirection::source ? 26 : 30;  // l3 14 + 12/16
  std::uint64_t keys[kChunk];
  std::optional<std::uint64_t> hits[kChunk];
  std::size_t packet_of_key[kChunk];
  std::uint8_t shape_of_key[kChunk];
  for (std::size_t start = 0; start < n; start += kChunk) {
    const std::size_t count = std::min(kChunk, n - start);
    std::size_t gathered = 0;
    for (std::size_t i = 0; i < count; ++i) {
      ppe::PacketContext& ctx = *ctxs[start + i];
      if (start + i + 1 < n) {
        __builtin_prefetch(ctxs[start + i + 1]->packet().data().data());
      }
      const net::Bytes& b = ctx.packet().data();
      const std::uint8_t shape = fast_path_shape(b);
      if (shape != kSlowPath) {
        // Canonical frame: the match address sits at a fixed offset and
        // parse_packet is guaranteed to agree, so skip building the full
        // ParsedPacket on the per-packet path.
        keys[gathered] = net::read_be32(b, addr_offset);
        packet_of_key[gathered] = start + i;
        shape_of_key[gathered] = shape;
        ++gathered;
        continue;
      }
      const auto& parsed = ctx.parsed();
      if (!parsed.ok() || !parsed.outer.ipv4) {
        stats_.add(2, ctx.packet().size());
        out[start + i] = ppe::Verdict::forward;  // IPv4-only: pass through
        continue;
      }
      const net::Ipv4Address match_addr =
          config_.direction == NatDirection::source ? parsed.outer.ipv4->src
                                                    : parsed.outer.ipv4->dst;
      keys[gathered] = match_addr.value();
      packet_of_key[gathered] = start + i;
      shape_of_key[gathered] = kSlowPath;
      ++gathered;
    }
    table_.lookup_batch(keys, hits, gathered);
    for (std::size_t j = 0; j < gathered; ++j) {
      ppe::PacketContext& ctx = *ctxs[packet_of_key[j]];
      ppe::Verdict& verdict = out[packet_of_key[j]];
      if (!hits[j]) {
        stats_.add(1, ctx.packet().size());
        switch (config_.miss_action) {
          case NatMissAction::forward:
            verdict = ppe::Verdict::forward;
            break;
          case NatMissAction::drop:
            verdict = ppe::Verdict::drop;
            break;
          case NatMissAction::punt:
            verdict = ppe::Verdict::to_control_plane;
            break;
        }
        continue;
      }
      if (shape_of_key[j] != kSlowPath) {
        // Inline the exact edits rewrite_ipv4_src/dst performs on this
        // shape: address write plus RFC 1624 incremental patches of the
        // IPv4 checksum and the L4 pseudo-header checksum.
        net::Bytes& b = ctx.bytes();
        const auto old_value = static_cast<std::uint32_t>(keys[j]);
        const auto new_value = static_cast<std::uint32_t>(*hits[j]);
        if (old_value != new_value) {
          net::write_be32(b, addr_offset, new_value);
          net::write_be16(b, 24,
                          net::checksum_incremental_update32(
                              net::read_be16(b, 24), old_value, new_value));
          if (shape_of_key[j] == kFastTcp) {
            net::write_be16(b, 34 + 16,
                            net::checksum_incremental_update32(
                                net::read_be16(b, 34 + 16), old_value,
                                new_value));
          } else if (net::read_be16(b, 34 + 6) != 0) {
            std::uint16_t patched = net::checksum_incremental_update32(
                net::read_be16(b, 34 + 6), old_value, new_value);
            if (patched == 0) patched = 0xffff;
            net::write_be16(b, 34 + 6, patched);
          }
        }
        // rewrite_ipv4_addr reports success even for an identity mapping,
        // so the translated counter advances either way.
        ctx.invalidate_parse();
        stats_.add(0, ctx.packet().size());
        verdict = ppe::Verdict::forward;
        continue;
      }
      const net::Ipv4Address translated{static_cast<std::uint32_t>(*hits[j])};
      const bool rewritten =
          config_.direction == NatDirection::source
              ? net::rewrite_ipv4_src(ctx.bytes(), ctx.parsed(), translated)
              : net::rewrite_ipv4_dst(ctx.bytes(), ctx.parsed(), translated);
      if (rewritten) {
        ctx.invalidate_parse();
        stats_.add(0, ctx.packet().size());
      }
      verdict = ppe::Verdict::forward;
    }
  }
}

hw::ResourceBreakdown StaticNat::resource_breakdown(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceBreakdown breakdown;
  // Eth (14) + IPv4 (20) + L4 ports (4) examined by the parser.
  breakdown.add("parser", RM::parser(38, w));
  breakdown.add("nat_table", RM::exact_match_table(config_.table_capacity,
                                                   32, 64));
  breakdown.add("addr_edit", RM::field_edit_unit(1, w));
  breakdown.add("checksum_patch", RM::checksum_patch_unit());
  breakdown.add("deparser", RM::deparser(w));
  breakdown.add("csr", RM::csr_block(24));
  breakdown.add("ingress_fifo", RM::stream_fifo(128, 72));
  breakdown.add("egress_fifo", RM::stream_fifo(128, 72));
  breakdown.add("lookup_fifo", RM::stream_fifo(128, 72));
  breakdown.add("pipeline_fsm", RM::control_fsm(18, w));
  return breakdown;
}

hw::ResourceUsage StaticNat::resource_usage(
    const hw::DatapathConfig& datapath) const {
  return resource_breakdown(datapath).total();
}

ppe::StageProfile StaticNat::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_set(
      {HeaderKind::ethernet, HeaderKind::ipv4, HeaderKind::tcp,
       HeaderKind::udp});
  // Address rewrite plus incremental IPv4/L4 checksum patches.
  profile.writes = ppe::header_set(
      {HeaderKind::ipv4, HeaderKind::tcp, HeaderKind::udp});
  profile.tables.push_back(ppe::TableProfile{
      .name = table_.name(),
      .kind = ppe::TableKind::exact_match,
      .capacity = table_.capacity(),
      .key_bits = table_.key_bits(),
      .value_bits = table_.value_bits(),
      .key_sources = ppe::header_bit(HeaderKind::ipv4)});
  profile.counter_banks.push_back({"nat_stats", stats_.size(), 2});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

bool StaticNat::add_mapping(net::Ipv4Address original,
                            net::Ipv4Address translated) {
  return table_.insert(original.value(), translated.value());
}

bool StaticNat::remove_mapping(net::Ipv4Address original) {
  return table_.erase(original.value());
}

std::optional<net::Ipv4Address> StaticNat::translation_for(
    net::Ipv4Address original) const {
  const auto hit = table_.lookup(original.value());
  if (!hit) return std::nullopt;
  return net::Ipv4Address{static_cast<std::uint32_t>(*hit)};
}

bool StaticNat::table_insert(std::string_view table, std::uint64_t key,
                             std::uint64_t value) {
  return table == "nat" && table_.insert(key, value);
}

bool StaticNat::table_erase(std::string_view table, std::uint64_t key) {
  return table == "nat" && table_.erase(key);
}

std::optional<std::uint64_t> StaticNat::table_lookup(std::string_view table,
                                                     std::uint64_t key) const {
  if (table != "nat") return std::nullopt;
  return table_.lookup(key);
}

std::vector<ppe::CounterSnapshot> StaticNat::counters() const {
  return {
      {"nat_stats", 0, stats_.packets(0), stats_.bytes(0)},
      {"nat_stats", 1, stats_.packets(1), stats_.bytes(1)},
      {"nat_stats", 2, stats_.packets(2), stats_.bytes(2)},
  };
}

namespace {
const bool registered = ppe::register_ppe_app(
    "nat", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<StaticNat>();
      const auto parsed = NatConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<StaticNat>(*parsed);
    });
}  // namespace

/// Force-link hook used by register_builtin_apps().
void link_nat_app() { (void)registered; }

}  // namespace flexsfp::apps
