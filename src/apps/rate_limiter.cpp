#include "apps/rate_limiter.hpp"

#include <algorithm>

#include "hw/resource_model.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

net::Bytes RateLimiterConfig::serialize() const {
  net::Bytes out(20);
  net::write_be32(out, 0, max_subscribers);
  net::write_be64(out, 4, default_spec.rate_bps);
  net::write_be64(out, 12, default_spec.burst_bytes);
  return out;
}

std::optional<RateLimiterConfig> RateLimiterConfig::parse(net::BytesView data) {
  if (data.size() < 20) return std::nullopt;
  RateLimiterConfig config;
  config.max_subscribers = net::read_be32(data, 0);
  config.default_spec.rate_bps = net::read_be64(data, 4);
  config.default_spec.burst_bytes = net::read_be64(data, 12);
  if (config.max_subscribers == 0) return std::nullopt;
  return config;
}

RateLimiter::RateLimiter(RateLimiterConfig config)
    : config_(config),
      subscribers_("subscribers", config.max_subscribers),
      buckets_(config.max_subscribers + 1),  // slot 0 = default bucket
      stats_("ratelimit_stats", 3) {
  buckets_[0].spec = config_.default_spec;
  buckets_[0].tokens = double(config_.default_spec.burst_bytes);
  free_slots_.reserve(config_.max_subscribers);
  for (std::size_t i = config_.max_subscribers; i > 0; --i) {
    free_slots_.push_back(i);
  }
}

bool RateLimiter::consume(Bucket& bucket, std::int64_t now_ps,
                          std::size_t bytes) {
  const double elapsed_s =
      double(std::max<std::int64_t>(now_ps - bucket.last_refill_ps, 0)) *
      1e-12;
  bucket.tokens = std::min(
      bucket.tokens + elapsed_s * double(bucket.spec.rate_bps) / 8.0,
      double(bucket.spec.burst_bytes));
  bucket.last_refill_ps = now_ps;
  if (bucket.tokens >= double(bytes)) {
    bucket.tokens -= double(bytes);
    return true;
  }
  return false;
}

ppe::Verdict RateLimiter::process(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  if (!parsed.outer.ipv4) return ppe::Verdict::forward;

  const auto slot = subscribers_.lookup(parsed.outer.ipv4->src);
  if (!slot) {
    if (config_.default_spec.rate_bps == 0) {
      stats_.add(2, ctx.packet().size());
      return ppe::Verdict::forward;  // unmatched traffic unlimited
    }
    if (consume(buckets_[0], ctx.packet().ingress_time_ps(),
                ctx.packet().size())) {
      stats_.add(0, ctx.packet().size());
      return ppe::Verdict::forward;
    }
    stats_.add(1, ctx.packet().size());
    return ppe::Verdict::drop;
  }

  Bucket& bucket = buckets_[static_cast<std::size_t>(*slot)];
  if (consume(bucket, ctx.packet().ingress_time_ps(), ctx.packet().size())) {
    stats_.add(0, ctx.packet().size());
    return ppe::Verdict::forward;
  }
  stats_.add(1, ctx.packet().size());
  return ppe::Verdict::drop;
}

bool RateLimiter::add_subscriber(net::Ipv4Prefix prefix, TokenBucketSpec spec) {
  if (free_slots_.empty()) return false;
  const std::size_t slot = free_slots_.back();
  if (!subscribers_.insert(prefix, slot)) return false;
  free_slots_.pop_back();
  buckets_[slot].spec = spec;
  buckets_[slot].tokens = double(spec.burst_bytes);
  buckets_[slot].last_refill_ps = 0;
  return true;
}

bool RateLimiter::remove_subscriber(net::Ipv4Prefix prefix) {
  // Exact-match, not LPM: with nested prefixes (10.0.0.0/8 and 10.0.0.0/24)
  // an LPM walk on prefix.address() resolves to the longest entry, freeing
  // the wrong bucket slot and aliasing two subscribers onto one bucket.
  const auto slot = subscribers_.lookup_exact(prefix);
  if (!slot) return false;
  if (!subscribers_.erase(prefix)) return false;
  // Reset the freed bucket so the next subscriber assigned this slot does
  // not inherit stale tokens or the old spec.
  buckets_[static_cast<std::size_t>(*slot)] = Bucket{};
  free_slots_.push_back(static_cast<std::size_t>(*slot));
  return true;
}

hw::ResourceUsage RateLimiter::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  usage += RM::parser(34, w);
  usage += RM::lpm_table(config_.max_subscribers);
  usage += RM::token_bucket_bank(config_.max_subscribers + 1);
  usage += RM::deparser(w);
  usage += RM::csr_block(12);
  usage += RM::stream_fifo(128, 72);
  usage += RM::stream_fifo(128, 72);
  usage += RM::control_fsm(8, w);
  return usage;
}

std::vector<ppe::CounterSnapshot> RateLimiter::counters() const {
  std::vector<ppe::CounterSnapshot> out;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    out.push_back({"ratelimit_stats", i, stats_.packets(i), stats_.bytes(i)});
  }
  return out;
}

ppe::StageProfile RateLimiter::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_set({HeaderKind::ethernet, HeaderKind::ipv4});
  profile.tables.push_back(ppe::TableProfile{
      .name = subscribers_.name(),
      .kind = ppe::TableKind::lpm,
      .capacity = subscribers_.capacity(),
      .key_bits = 32,
      .value_bits = 32,
      .key_sources = ppe::header_bit(HeaderKind::ipv4)});
  // LPM walk + token-bucket read-modify-write.
  profile.match_action_cycles = 2;
  profile.counter_banks.push_back({"ratelimit_stats", stats_.size(), 2});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

namespace {
const bool registered = ppe::register_ppe_app(
    "ratelimit", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<RateLimiter>();
      const auto parsed = RateLimiterConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<RateLimiter>(*parsed);
    });
}  // namespace

void link_ratelimit_app() { (void)registered; }

}  // namespace flexsfp::apps
