#include "apps/acl.hpp"

#include "hw/resource_model.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

net::Bytes AclConfig::serialize() const {
  net::Bytes out(5);
  out[0] = static_cast<std::uint8_t>(default_action);
  net::write_be32(out, 1, rule_capacity);
  return out;
}

std::optional<AclConfig> AclConfig::parse(net::BytesView data) {
  if (data.size() < 5 || data[0] > 2) return std::nullopt;
  AclConfig config;
  config.default_action = static_cast<AclAction>(data[0]);
  config.rule_capacity = net::read_be32(data, 1);
  if (config.rule_capacity == 0) return std::nullopt;
  return config;
}

AclFirewall::AclFirewall(AclConfig config)
    : config_(config),
      table_("acl", config.rule_capacity, 104),
      stats_("acl_stats", 4) {}

ppe::TernaryKey AclFirewall::pack_key(const net::FiveTuple& t) {
  ppe::TernaryKey key;
  key.hi = (std::uint64_t{t.src.value()} << 32) | t.dst.value();
  key.lo = (std::uint64_t{t.src_port} << 24) | (std::uint64_t{t.dst_port} << 8) |
           t.protocol;
  return key;
}

namespace {

ppe::Verdict action_verdict(AclAction action) {
  switch (action) {
    case AclAction::permit: return ppe::Verdict::forward;
    case AclAction::deny: return ppe::Verdict::drop;
    case AclAction::punt: return ppe::Verdict::to_control_plane;
  }
  return ppe::Verdict::drop;
}

std::size_t stat_index(AclAction action) {
  return static_cast<std::size_t>(action);  // 0/1/2
}

}  // namespace

ppe::Verdict AclFirewall::process(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  const auto tuple = parsed.five_tuple();
  if (!tuple) {
    // Non-IPv4 traffic falls to the default action, like an implicit rule.
    stats_.add(3, ctx.packet().size());
    return action_verdict(config_.default_action);
  }
  const auto* rule = table_.match(pack_key(*tuple));
  if (rule == nullptr) {
    stats_.add(3, ctx.packet().size());
    return action_verdict(config_.default_action);
  }
  const auto action = static_cast<AclAction>(rule->result);
  stats_.add(stat_index(action), ctx.packet().size());
  return action_verdict(action);
}

std::size_t AclFirewall::add_rule(const AclRuleSpec& spec) {
  // Build base value/mask from the prefix and protocol constraints.
  ppe::TernaryKey value{};
  ppe::TernaryKey mask{};
  if (spec.src) {
    value.hi |= std::uint64_t{spec.src->address().value()} << 32;
    mask.hi |= std::uint64_t{spec.src->mask()} << 32;
  }
  if (spec.dst) {
    value.hi |= spec.dst->address().value();
    mask.hi |= spec.dst->mask();
  }
  if (spec.protocol) {
    value.lo |= *spec.protocol;
    mask.lo |= 0xff;
  }

  // Expand port ranges (cartesian product of src x dst expansions).
  using Expansion = std::vector<std::pair<std::uint16_t, std::uint16_t>>;
  const Expansion src_parts =
      spec.src_port_range
          ? ppe::expand_port_range(spec.src_port_range->first,
                                   spec.src_port_range->second)
          : Expansion{{0, 0}};
  const Expansion dst_parts =
      spec.dst_port_range
          ? ppe::expand_port_range(spec.dst_port_range->first,
                                   spec.dst_port_range->second)
          : Expansion{{0, 0}};
  if (src_parts.empty() || dst_parts.empty()) return 0;

  const std::size_t expansion_count = src_parts.size() * dst_parts.size();
  if (table_.size() + expansion_count > table_.capacity()) return 0;

  std::size_t installed = 0;
  for (const auto& [sv, sm] : src_parts) {
    for (const auto& [dv, dm] : dst_parts) {
      ppe::TernaryRule rule;
      rule.value = value;
      rule.mask = mask;
      rule.value.lo |= (std::uint64_t{sv} << 24) | (std::uint64_t{dv} << 8);
      rule.mask.lo |= (std::uint64_t{sm} << 24) | (std::uint64_t{dm} << 8);
      rule.priority = spec.priority;
      rule.result = static_cast<std::uint64_t>(spec.action);
      if (table_.add_rule(rule)) ++installed;
    }
  }
  return installed;
}

void AclFirewall::clear_rules() { table_.clear(); }

hw::ResourceUsage AclFirewall::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  usage += RM::parser(38, w);
  usage += RM::ternary_table(config_.rule_capacity, 104);
  usage += RM::deparser(w);
  usage += RM::csr_block(16);
  usage += RM::stream_fifo(128, 72);
  usage += RM::stream_fifo(128, 72);
  usage += RM::control_fsm(10, w);
  usage += hw::ResourceModel::counter_bank(8, 64);
  return usage;
}

std::vector<ppe::CounterSnapshot> AclFirewall::counters() const {
  std::vector<ppe::CounterSnapshot> out;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    out.push_back({"acl_stats", i, stats_.packets(i), stats_.bytes(i)});
  }
  return out;
}

ppe::StageProfile AclFirewall::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_set(
      {HeaderKind::ethernet, HeaderKind::ipv4, HeaderKind::tcp,
       HeaderKind::udp});
  profile.tables.push_back(ppe::TableProfile{
      .name = table_.name(),
      .kind = ppe::TableKind::ternary,
      .capacity = table_.capacity(),
      .key_bits = 104,  // the packed 5-tuple layout (see pack_key)
      .value_bits = 64,
      .key_sources = ppe::header_set(
          {HeaderKind::ipv4, HeaderKind::tcp, HeaderKind::udp}),
      .shadowed_entries = table_.shadowed_rule_count(),
      .duplicate_entries = table_.duplicate_rule_count()});
  profile.counter_banks.push_back({"acl_stats", stats_.size(), 3});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

namespace {
const bool registered = ppe::register_ppe_app(
    "acl", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<AclFirewall>();
      const auto parsed = AclConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<AclFirewall>(*parsed);
    });
}  // namespace

void link_acl_app() { (void)registered; }

}  // namespace flexsfp::apps
