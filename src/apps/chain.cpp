#include "apps/chain.hpp"

#include <algorithm>
#include <iterator>

#include "hw/resource_model.hpp"

namespace flexsfp::apps {

AppChain::AppChain(std::vector<ppe::PpeAppPtr> stages)
    : stages_(std::move(stages)) {}

void AppChain::append(ppe::PpeAppPtr stage) {
  stages_.push_back(std::move(stage));
}

std::string AppChain::name() const {
  std::string out = "chain(";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i != 0) out += ",";
    out += stages_[i]->name();
  }
  return out + ")";
}

ppe::Verdict AppChain::process(ppe::PacketContext& ctx) {
  for (const auto& stage : stages_) {
    const ppe::Verdict verdict = stage->process(ctx);
    if (verdict != ppe::Verdict::forward) return verdict;
  }
  return ppe::Verdict::forward;
}

hw::ResourceUsage AppChain::resource_usage(
    const hw::DatapathConfig& datapath) const {
  hw::ResourceUsage usage;
  for (const auto& stage : stages_) {
    usage += stage->resource_usage(datapath);
  }
  // Inter-stage glue: one elastic FIFO per joint.
  if (stages_.size() > 1) {
    for (std::size_t i = 0; i + 1 < stages_.size(); ++i) {
      usage += hw::ResourceModel::stream_fifo(64, 72);
    }
  }
  return usage;
}

std::uint64_t AppChain::pipeline_latency_cycles() const {
  std::uint64_t total = 0;
  for (const auto& stage : stages_) {
    total += stage->pipeline_latency_cycles();
  }
  return std::max<std::uint64_t>(total, 1);
}

std::vector<ppe::StageProfile> AppChain::stage_profiles() const {
  std::vector<ppe::StageProfile> profiles;
  for (const auto& stage : stages_) {
    auto stage_list = stage->stage_profiles();
    profiles.insert(profiles.end(),
                    std::make_move_iterator(stage_list.begin()),
                    std::make_move_iterator(stage_list.end()));
  }
  return profiles;
}

void AppChain::visit_stages(
    const std::function<void(const ppe::PpeApp&)>& visit) const {
  // Mirrors stage_profiles(): nested chains flatten in pipeline order.
  for (const auto& stage : stages_) stage->visit_stages(visit);
}

ppe::StageProfile AppChain::profile() const {
  ppe::StageProfile merged;
  merged.stage = name();
  merged.match_action_cycles = 1;
  for (const ppe::StageProfile& stage : stage_profiles()) {
    merged.reads |= stage.reads;
    merged.writes |= stage.writes;
    merged.produces |= stage.produces;
    merged.consumes |= stage.consumes;
    merged.tables.insert(merged.tables.end(), stage.tables.begin(),
                         stage.tables.end());
    merged.counter_banks.insert(merged.counter_banks.end(),
                                stage.counter_banks.begin(),
                                stage.counter_banks.end());
    // Stages overlap in the pipeline: occupancy is set by the slowest one.
    merged.match_action_cycles =
        std::max(merged.match_action_cycles, stage.match_action_cycles);
    merged.pipeline_depth_cycles += stage.pipeline_depth_cycles;
  }
  // The chain's verdict is constant only when its very first stage already
  // short-circuits every packet.
  if (!stages_.empty()) {
    const auto first = stages_.front()->profile().constant_verdict;
    if (first && *first != ppe::Verdict::forward) merged.constant_verdict = first;
  }
  return merged;
}

std::vector<std::string> AppChain::table_names() const {
  std::vector<std::string> out;
  for (const auto& stage : stages_) {
    for (const auto& table : stage->table_names()) {
      out.push_back(stage->name() + "." + table);
    }
  }
  return out;
}

std::pair<ppe::PpeApp*, std::string_view> AppChain::resolve(
    std::string_view table) const {
  const auto dot = table.find('.');
  if (dot != std::string_view::npos) {
    const std::string_view stage_name = table.substr(0, dot);
    const std::string_view local = table.substr(dot + 1);
    for (const auto& stage : stages_) {
      if (stage->name() == stage_name) return {stage.get(), local};
    }
    return {nullptr, local};
  }
  for (const auto& stage : stages_) {
    const auto names = stage->table_names();
    if (std::find(names.begin(), names.end(), std::string(table)) !=
        names.end()) {
      return {stage.get(), table};
    }
  }
  return {nullptr, table};
}

bool AppChain::table_insert(std::string_view table, std::uint64_t key,
                            std::uint64_t value) {
  const auto [stage, local] = resolve(table);
  return stage != nullptr && stage->table_insert(local, key, value);
}

bool AppChain::table_erase(std::string_view table, std::uint64_t key) {
  const auto [stage, local] = resolve(table);
  return stage != nullptr && stage->table_erase(local, key);
}

std::optional<std::uint64_t> AppChain::table_lookup(std::string_view table,
                                                    std::uint64_t key) const {
  const auto [stage, local] = resolve(table);
  if (stage == nullptr) return std::nullopt;
  return stage->table_lookup(local, key);
}

ppe::PpeApp* AppChain::find_stage(std::string_view stage_name) {
  for (const auto& stage : stages_) {
    if (ppe::PpeApp* found = stage->find_stage(stage_name)) return found;
  }
  return nullptr;
}

std::vector<ppe::CounterSnapshot> AppChain::counters() const {
  std::vector<ppe::CounterSnapshot> out;
  for (const auto& stage : stages_) {
    const auto stage_counters = stage->counters();
    out.insert(out.end(), stage_counters.begin(), stage_counters.end());
  }
  return out;
}

}  // namespace flexsfp::apps
