// Per-port ACL firewall (§3 "Security and Policy Enforcement"): 5-tuple
// ternary rules with priorities, port ranges (expanded to masks, as a real
// TCAM would), per-rule hit counters and a configurable default action.
#pragma once

#include <cstdint>
#include <optional>

#include "net/flow.hpp"
#include "ppe/app.hpp"
#include "ppe/tables.hpp"

namespace flexsfp::apps {

enum class AclAction : std::uint8_t {
  permit = 0,
  deny = 1,
  punt = 2,
};

/// User-facing rule specification; unset fields wildcard. Port ranges are
/// inclusive and may expand into several ternary entries.
struct AclRuleSpec {
  std::optional<net::Ipv4Prefix> src;
  std::optional<net::Ipv4Prefix> dst;
  std::optional<std::uint8_t> protocol;
  std::optional<std::pair<std::uint16_t, std::uint16_t>> src_port_range;
  std::optional<std::pair<std::uint16_t, std::uint16_t>> dst_port_range;
  AclAction action = AclAction::deny;
  std::uint32_t priority = 0;
};

struct AclConfig {
  AclAction default_action = AclAction::permit;
  std::uint32_t rule_capacity = 256;  // TCAM entries (after expansion)

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<AclConfig> parse(net::BytesView data);
};

class AclFirewall final : public ppe::PpeApp {
 public:
  explicit AclFirewall(AclConfig config = {});

  [[nodiscard]] std::string name() const override { return "acl"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  /// Install a rule; returns the number of ternary entries it expanded to,
  /// or 0 when the TCAM lacks space for the full expansion (all-or-nothing).
  std::size_t add_rule(const AclRuleSpec& spec);
  void clear_rules();

  /// Pack a 5-tuple into the 104-bit ternary key layout used internally
  /// (exposed for tests): hi = src(32) dst(32), lo = sport(16) dport(16)
  /// proto(8) in the low 40 bits.
  [[nodiscard]] static ppe::TernaryKey pack_key(const net::FiveTuple& t);

  [[nodiscard]] const ppe::TernaryTable& rules() const { return table_; }
  [[nodiscard]] std::uint64_t permitted() const { return stats_.packets(0); }
  [[nodiscard]] std::uint64_t denied() const { return stats_.packets(1); }

  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  AclConfig config_;
  ppe::TernaryTable table_;
  ppe::CounterBank stats_;  // 0 permit, 1 deny, 2 punt, 3 default-action
};

}  // namespace flexsfp::apps
