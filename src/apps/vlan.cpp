#include "apps/vlan.hpp"

#include "hw/resource_model.hpp"
#include "net/builder.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

net::Bytes VlanConfig::serialize() const {
  net::Bytes out(5);
  out[0] = static_cast<std::uint8_t>(mode);
  net::write_be16(out, 1, vid);
  out[3] = pcp;
  out[4] = strict ? 1 : 0;
  return out;
}

std::optional<VlanConfig> VlanConfig::parse(net::BytesView data) {
  if (data.size() < 5 || data[0] > 3) return std::nullopt;
  VlanConfig config;
  config.mode = static_cast<VlanMode>(data[0]);
  config.vid = net::read_be16(data, 1) & 0x0fff;
  config.pcp = data[3] & 0x7;
  config.strict = data[4] != 0;
  return config;
}

VlanTagger::VlanTagger(VlanConfig config)
    : config_(config),
      translation_("vid_translation", 4096, 12, 12),
      stats_("vlan_stats", 3) {}

ppe::Verdict VlanTagger::process(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  if (!parsed.ok() && parsed.error != net::ParseError::bad_ip_version) {
    // Structurally broken frames pass through untouched; tagging garbage
    // would only obscure it.
    stats_.add(1, ctx.packet().size());
    return ppe::Verdict::forward;
  }
  const bool tagged = !parsed.vlan_tags.empty();

  switch (config_.mode) {
    case VlanMode::push:
      net::push_vlan(ctx.bytes(), config_.vid, config_.pcp);
      ctx.invalidate_parse();
      stats_.add(0, ctx.packet().size());
      return ppe::Verdict::forward;

    case VlanMode::qinq_push:
      net::push_vlan(ctx.bytes(), config_.vid, config_.pcp,
                     net::EtherType::qinq);
      ctx.invalidate_parse();
      stats_.add(0, ctx.packet().size());
      return ppe::Verdict::forward;

    case VlanMode::pop:
      if (!tagged) {
        if (config_.strict) {
          stats_.add(2, ctx.packet().size());
          return ppe::Verdict::drop;
        }
        stats_.add(1, ctx.packet().size());
        return ppe::Verdict::forward;
      }
      net::pop_vlan(ctx.bytes());
      ctx.invalidate_parse();
      stats_.add(0, ctx.packet().size());
      return ppe::Verdict::forward;

    case VlanMode::rewrite: {
      if (!tagged) {
        if (config_.strict) {
          stats_.add(2, ctx.packet().size());
          return ppe::Verdict::drop;
        }
        stats_.add(1, ctx.packet().size());
        return ppe::Verdict::forward;
      }
      const std::uint16_t old_vid = parsed.vlan_tags.front().vid;
      const auto mapped = translation_.lookup(old_vid);
      const std::uint16_t new_vid =
          mapped ? static_cast<std::uint16_t>(*mapped) : config_.vid;
      net::VlanTag tag = parsed.vlan_tags.front();
      tag.vid = new_vid & 0x0fff;
      tag.serialize_to(ctx.bytes(), net::EthernetHeader::size());
      ctx.invalidate_parse();
      stats_.add(0, ctx.packet().size());
      return ppe::Verdict::forward;
    }
  }
  return ppe::Verdict::forward;
}

bool VlanTagger::add_translation(std::uint16_t from_vid, std::uint16_t to_vid) {
  return translation_.insert(from_vid & 0x0fff, to_vid & 0x0fff);
}

hw::ResourceUsage VlanTagger::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  usage += RM::parser(18, w);  // Ethernet + up to one tag
  usage += RM::header_shift_unit(4, w);
  usage += RM::exact_match_table(4096, 12, 12);
  usage += RM::deparser(w);
  usage += RM::csr_block(8);
  usage += RM::stream_fifo(128, 72);
  usage += RM::stream_fifo(128, 72);
  usage += RM::control_fsm(8, w);
  return usage;
}

bool VlanTagger::table_insert(std::string_view table, std::uint64_t key,
                              std::uint64_t value) {
  return table == "vid_translation" &&
         translation_.insert(key & 0x0fff, value & 0x0fff);
}

bool VlanTagger::table_erase(std::string_view table, std::uint64_t key) {
  return table == "vid_translation" && translation_.erase(key & 0x0fff);
}

std::optional<std::uint64_t> VlanTagger::table_lookup(std::string_view table,
                                                      std::uint64_t key) const {
  if (table != "vid_translation") return std::nullopt;
  return translation_.lookup(key & 0x0fff);
}

std::vector<ppe::CounterSnapshot> VlanTagger::counters() const {
  std::vector<ppe::CounterSnapshot> out;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    out.push_back({"vlan_stats", i, stats_.packets(i), stats_.bytes(i)});
  }
  return out;
}

ppe::StageProfile VlanTagger::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_set({HeaderKind::ethernet, HeaderKind::vlan});
  switch (config_.mode) {
    case VlanMode::push:
    case VlanMode::qinq_push:
      profile.produces = ppe::header_bit(HeaderKind::vlan);
      break;
    case VlanMode::pop:
      profile.consumes = ppe::header_bit(HeaderKind::vlan);
      break;
    case VlanMode::rewrite:
      profile.writes = ppe::header_bit(HeaderKind::vlan);
      profile.tables.push_back(ppe::TableProfile{
          .name = translation_.name(),
          .kind = ppe::TableKind::exact_match,
          .capacity = translation_.capacity(),
          .key_bits = translation_.key_bits(),
          .value_bits = translation_.value_bits(),
          .key_sources = ppe::header_bit(HeaderKind::vlan)});
      break;
  }
  // Tag push/pop shifts the whole frame by 4 bytes.
  profile.match_action_cycles = 2;
  profile.counter_banks.push_back({"vlan_stats", stats_.size(), 2});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

namespace {
const bool registered = ppe::register_ppe_app(
    "vlan", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<VlanTagger>();
      const auto parsed = VlanConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<VlanTagger>(*parsed);
    });
}  // namespace

void link_vlan_app() { (void)registered; }

}  // namespace flexsfp::apps
