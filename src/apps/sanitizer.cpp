#include "apps/sanitizer.hpp"

#include "hw/resource_model.hpp"
#include "net/checksum.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

IssueMask strict_issue_mask() {
  using VI = net::ValidationIssue;
  return issue_bit(VI::ipv4_bad_checksum) |
         issue_bit(VI::ipv4_total_length_mismatch) |
         issue_bit(VI::ipv4_ttl_zero) | issue_bit(VI::ipv4_martian_source) |
         issue_bit(VI::ipv6_payload_length_mismatch) |
         issue_bit(VI::ipv6_hop_limit_zero) | issue_bit(VI::tcp_bad_flags) |
         issue_bit(VI::udp_length_mismatch) |
         issue_bit(VI::frame_undersized);
}

net::Bytes SanitizerConfig::serialize() const {
  net::Bytes out(7);
  net::write_be32(out, 0, drop_mask);
  out[4] = strip_ipv4_options ? 1 : 0;
  out[5] = drop_unparseable ? 1 : 0;
  out[6] = block_doh ? 1 : 0;
  return out;
}

std::optional<SanitizerConfig> SanitizerConfig::parse(net::BytesView data) {
  if (data.size() < 7) return std::nullopt;
  SanitizerConfig config;
  config.drop_mask = net::read_be32(data, 0);
  config.strip_ipv4_options = data[4] != 0;
  config.drop_unparseable = data[5] != 0;
  config.block_doh = data[6] != 0;
  return config;
}

Sanitizer::Sanitizer(SanitizerConfig config)
    : config_(config),
      doh_resolvers_("doh_resolvers", 256, 32, 8),
      stats_("sanitizer_stats", 4),
      issues_("issue_stats", 16) {}

bool Sanitizer::strip_options(net::Bytes& frame,
                              const net::ParsedPacket& parsed) {
  if (!parsed.outer.ipv4 || parsed.outer.ipv4->ihl <= 5) return false;
  const auto& ip = *parsed.outer.ipv4;
  const std::size_t l3 = parsed.outer.l3_offset;
  const std::size_t option_bytes = ip.size() - net::Ipv4Header::min_size();

  frame.erase(frame.begin() +
                  static_cast<std::ptrdiff_t>(l3 + net::Ipv4Header::min_size()),
              frame.begin() + static_cast<std::ptrdiff_t>(l3 + ip.size()));

  net::Ipv4Header fixed = ip;
  fixed.ihl = 5;
  fixed.total_length =
      static_cast<std::uint16_t>(ip.total_length - option_bytes);
  fixed.checksum = 0;
  fixed.serialize_to(frame, l3);
  net::write_be16(frame, l3 + 10, fixed.compute_checksum());
  return true;
}

ppe::Verdict Sanitizer::process(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  if (!parsed.ok() && parsed.error != net::ParseError::bad_ip_version) {
    if (config_.drop_unparseable) {
      stats_.add(1, ctx.packet().size());
      return ppe::Verdict::drop;
    }
    stats_.add(0, ctx.packet().size());
    return ppe::Verdict::forward;
  }

  // DoH blocking: port 443 toward a known resolver.
  if (config_.block_doh) {
    const auto tuple = parsed.five_tuple();
    if (tuple && tuple->dst_port == 443 &&
        doh_resolvers_.lookup(tuple->dst.value()).has_value()) {
      stats_.add(3, ctx.packet().size());
      return ppe::Verdict::drop;
    }
  }

  const auto found = net::validate_packet(parsed, ctx.bytes());
  bool drop = false;
  bool has_options = false;
  for (const auto issue : found) {
    issues_.add(static_cast<std::size_t>(issue), ctx.packet().size());
    if ((config_.drop_mask & issue_bit(issue)) != 0) drop = true;
    if (issue == net::ValidationIssue::ipv4_options_present) {
      has_options = true;
    }
  }
  if (drop) {
    stats_.add(1, ctx.packet().size());
    return ppe::Verdict::drop;
  }
  if (has_options && config_.strip_ipv4_options) {
    if (strip_options(ctx.bytes(), parsed)) {
      ctx.invalidate_parse();
      stats_.add(2, ctx.packet().size());
      return ppe::Verdict::forward;
    }
  }
  stats_.add(0, ctx.packet().size());
  return ppe::Verdict::forward;
}

bool Sanitizer::add_doh_resolver(net::Ipv4Address resolver) {
  return doh_resolvers_.insert(resolver.value(), 1);
}

hw::ResourceUsage Sanitizer::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  usage += RM::parser(54, w);  // validation reads deeper than forwarding
  usage += RM::checksum_patch_unit();          // checksum verify
  usage += RM::checksum_patch_unit();          // checksum regenerate (strip)
  usage += RM::header_shift_unit(40, w);       // option removal shifter
  usage += RM::exact_match_table(256, 32, 8);  // DoH resolver set
  usage += RM::deparser(w);
  usage += RM::csr_block(16);
  usage += RM::stream_fifo(128, 72);
  usage += RM::stream_fifo(128, 72);
  usage += RM::control_fsm(14, w);
  usage += RM::counter_bank(40, 64);
  return usage;
}

bool Sanitizer::table_insert(std::string_view table, std::uint64_t key,
                             std::uint64_t value) {
  return table == "doh_resolvers" && doh_resolvers_.insert(key, value);
}

bool Sanitizer::table_erase(std::string_view table, std::uint64_t key) {
  return table == "doh_resolvers" && doh_resolvers_.erase(key);
}

std::optional<std::uint64_t> Sanitizer::table_lookup(std::string_view table,
                                                     std::uint64_t key) const {
  if (table != "doh_resolvers") return std::nullopt;
  return doh_resolvers_.lookup(key);
}

std::vector<ppe::CounterSnapshot> Sanitizer::counters() const {
  std::vector<ppe::CounterSnapshot> out;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    out.push_back({"sanitizer_stats", i, stats_.packets(i), stats_.bytes(i)});
  }
  return out;
}

ppe::StageProfile Sanitizer::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  // Structural validation inspects every wire layer.
  profile.reads = ppe::wire_header_set();
  if (config_.strip_ipv4_options) {
    profile.writes = ppe::header_bit(HeaderKind::ipv4);
    // Option stripping realigns everything behind the IPv4 header.
    profile.match_action_cycles = 2;
  }
  if (config_.block_doh) {
    profile.tables.push_back(ppe::TableProfile{
        .name = doh_resolvers_.name(),
        .kind = ppe::TableKind::exact_match,
        .capacity = doh_resolvers_.capacity(),
        .key_bits = doh_resolvers_.key_bits(),
        .value_bits = doh_resolvers_.value_bits(),
        .key_sources = ppe::header_bit(HeaderKind::ipv4)});
  }
  profile.counter_banks.push_back({"sanitizer_stats", stats_.size(), 3});
  profile.counter_banks.push_back(
      {"issue_stats", issues_.size(),
       static_cast<std::size_t>(net::ValidationIssue::frame_undersized)});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

namespace {
const bool registered = ppe::register_ppe_app(
    "sanitizer", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<Sanitizer>();
      const auto parsed = SanitizerConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<Sanitizer>(*parsed);
    });
}  // namespace

void link_sanitizer_app() { (void)registered; }

}  // namespace flexsfp::apps
