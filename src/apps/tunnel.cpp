#include "apps/tunnel.hpp"

#include "hw/resource_model.hpp"
#include "net/builder.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

net::Bytes TunnelConfig::serialize() const {
  net::Bytes out(2 + 4 + 4 + 4 + 6 + 6);
  out[0] = static_cast<std::uint8_t>(type);
  out[1] = static_cast<std::uint8_t>(role);
  net::write_be32(out, 2, local.value());
  net::write_be32(out, 6, remote.value());
  net::write_be32(out, 10, vni);
  for (std::size_t i = 0; i < 6; ++i) out[14 + i] = outer_dst.octets()[i];
  for (std::size_t i = 0; i < 6; ++i) out[20 + i] = outer_src.octets()[i];
  return out;
}

std::optional<TunnelConfig> TunnelConfig::parse(net::BytesView data) {
  if (data.size() < 26 || data[0] > 2 || data[1] > 1) return std::nullopt;
  TunnelConfig config;
  config.type = static_cast<TunnelType>(data[0]);
  config.role = static_cast<TunnelRole>(data[1]);
  config.local = net::Ipv4Address{net::read_be32(data, 2)};
  config.remote = net::Ipv4Address{net::read_be32(data, 6)};
  config.vni = net::read_be32(data, 10);
  std::array<std::uint8_t, 6> mac{};
  for (std::size_t i = 0; i < 6; ++i) mac[i] = data[14 + i];
  config.outer_dst = net::MacAddress{mac};
  for (std::size_t i = 0; i < 6; ++i) mac[i] = data[20 + i];
  config.outer_src = net::MacAddress{mac};
  return config;
}

TunnelApp::TunnelApp(TunnelConfig config)
    : config_(config), stats_("tunnel_stats", 2) {}

ppe::Verdict TunnelApp::process(ppe::PacketContext& ctx) {
  bool transformed = false;
  if (config_.role == TunnelRole::encap) {
    switch (config_.type) {
      case TunnelType::gre:
        transformed =
            net::encapsulate_gre(ctx.bytes(), config_.local, config_.remote);
        break;
      case TunnelType::vxlan:
        transformed = net::encapsulate_vxlan(
            ctx.bytes(), config_.outer_dst, config_.outer_src, config_.local,
            config_.remote, config_.vni);
        break;
      case TunnelType::ipip:
        transformed =
            net::encapsulate_ipip(ctx.bytes(), config_.local, config_.remote);
        break;
    }
  } else {
    transformed = net::decapsulate(ctx.bytes());
  }
  if (transformed) ctx.invalidate_parse();
  stats_.add(transformed ? 0 : 1, ctx.packet().size());
  return ppe::Verdict::forward;
}

hw::ResourceUsage TunnelApp::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  const std::size_t shim = config_.type == TunnelType::vxlan
                               ? 50   // eth + ipv4 + udp + vxlan
                               : 24;  // ipv4 + gre
  hw::ResourceUsage usage;
  usage += RM::parser(38, w);
  usage += RM::header_shift_unit(shim, w);
  usage += RM::checksum_patch_unit();  // outer header checksum generation
  usage += RM::deparser(w);
  usage += RM::csr_block(12);
  usage += RM::stream_fifo(128, 72);
  usage += RM::stream_fifo(128, 72);
  usage += RM::control_fsm(10, w);
  return usage;
}

std::vector<ppe::CounterSnapshot> TunnelApp::counters() const {
  return {
      {"tunnel_stats", 0, stats_.packets(0), stats_.bytes(0)},
      {"tunnel_stats", 1, stats_.packets(1), stats_.bytes(1)},
  };
}

ppe::StageProfile TunnelApp::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_set({HeaderKind::ethernet, HeaderKind::ipv4});
  ppe::HeaderSet shim = 0;
  switch (config_.type) {
    case TunnelType::gre:
      shim = ppe::header_bit(HeaderKind::gre);
      break;
    case TunnelType::vxlan:
      shim = ppe::header_set({HeaderKind::udp, HeaderKind::vxlan});
      break;
    case TunnelType::ipip:
      shim = ppe::header_bit(HeaderKind::ipv4);
      break;
  }
  if (config_.role == TunnelRole::encap) {
    profile.writes = ppe::header_set({HeaderKind::ethernet, HeaderKind::ipv4});
    profile.produces = shim;
  } else {
    profile.reads |= shim;
    profile.consumes = shim & ~ppe::header_bit(HeaderKind::ipv4);
  }
  // Shim insertion/removal realigns the whole stream behind the header.
  profile.match_action_cycles = 2;
  profile.counter_banks.push_back({"tunnel_stats", stats_.size(), 1});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

namespace {
const bool registered = ppe::register_ppe_app(
    "tunnel", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<TunnelApp>();
      const auto parsed = TunnelConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<TunnelApp>(*parsed);
    });
}  // namespace

void link_tunnel_app() { (void)registered; }

}  // namespace flexsfp::apps
