#include "apps/load_balancer.hpp"

#include <algorithm>

#include "hw/resource_model.hpp"
#include "ppe/registry.hpp"

namespace flexsfp::apps {

namespace {
constexpr std::size_t max_tracked_backends = 64;
}

net::Bytes LoadBalancerConfig::serialize() const {
  net::Bytes out(4);
  net::write_be32(out, 0, table_size);
  return out;
}

std::optional<LoadBalancerConfig> LoadBalancerConfig::parse(
    net::BytesView data) {
  if (data.size() < 4) return std::nullopt;
  LoadBalancerConfig config;
  config.table_size = net::read_be32(data, 0);
  if (config.table_size < 3) return std::nullopt;
  return config;
}

LoadBalancer::LoadBalancer(LoadBalancerConfig config)
    : config_(config),
      table_(config.table_size, -1),
      stats_("lb_stats", max_tracked_backends) {}

std::vector<std::size_t> LoadBalancer::active_backend_indices() const {
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i].healthy) active.push_back(i);
  }
  return active;
}

void LoadBalancer::rebuild_table() {
  // Maglev population: backend i has a permutation of table slots driven by
  // (offset, skip) derived from hashes of its id; backends claim slots in
  // round-robin permutation order until the table is full.
  std::fill(table_.begin(), table_.end(), -1);
  const auto active = active_backend_indices();
  if (active.empty()) return;

  const std::size_t m = table_.size();
  struct Cursor {
    std::size_t offset;
    std::size_t skip;
    std::size_t next = 0;
    std::int32_t backend_index;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(active.size());
  for (const std::size_t index : active) {
    const std::uint32_t id = backends_[index].id;
    const std::uint64_t h1 = net::fnv1a_u64(id);
    const std::uint64_t h2 = net::murmur3_64(net::BytesView{
        reinterpret_cast<const std::uint8_t*>(&id), sizeof id});
    cursors.push_back(Cursor{.offset = h1 % m,
                             .skip = (h2 % (m - 1)) + 1,
                             .backend_index = static_cast<std::int32_t>(index)});
  }

  std::size_t filled = 0;
  while (filled < m) {
    for (auto& cursor : cursors) {
      // Walk this backend's permutation to its next unclaimed slot.
      std::size_t slot;
      do {
        slot = (cursor.offset + cursor.next * cursor.skip) % m;
        ++cursor.next;
      } while (table_[slot] >= 0);
      table_[slot] = cursor.backend_index;
      if (++filled == m) break;
    }
  }
}

void LoadBalancer::add_backend(Backend backend) {
  backends_.push_back(backend);
  rebuild_table();
}

bool LoadBalancer::remove_backend(std::uint32_t id) {
  const auto it =
      std::find_if(backends_.begin(), backends_.end(),
                   [id](const Backend& b) { return b.id == id; });
  if (it == backends_.end()) return false;
  backends_.erase(it);
  rebuild_table();
  return true;
}

bool LoadBalancer::set_backend_health(std::uint32_t id, bool healthy) {
  const auto it =
      std::find_if(backends_.begin(), backends_.end(),
                   [id](const Backend& b) { return b.id == id; });
  if (it == backends_.end()) return false;
  it->healthy = healthy;
  rebuild_table();
  return true;
}

std::optional<Backend> LoadBalancer::backend_for(
    const net::FiveTuple& tuple) const {
  if (backends_.empty()) return std::nullopt;
  // Hash the canonicalized tuple so both directions of a flow agree. A
  // strong hash over the canonical form avoids the bit-aliasing weakness of
  // the symmetric Toeplitz key (bits 16 positions apart cancel), which
  // would collapse correlated flow populations onto a few table slots.
  const std::uint64_t h = net::hash_tuple(tuple.canonical());
  const std::int32_t index = table_[h % table_.size()];
  if (index < 0 || index >= static_cast<std::int32_t>(backends_.size())) {
    return std::nullopt;
  }
  return backends_[static_cast<std::size_t>(index)];
}

ppe::Verdict LoadBalancer::process(ppe::PacketContext& ctx) {
  const auto& parsed = ctx.parsed();
  const auto tuple = parsed.five_tuple();
  if (!tuple) return ppe::Verdict::forward;  // non-IPv4 bypasses the LB

  const auto backend = backend_for(*tuple);
  if (!backend) return ppe::Verdict::forward;  // no pool: pass through

  // Steer by rewriting the destination MAC toward the chosen uplink.
  net::EthernetHeader eth = parsed.eth;
  eth.dst = backend->next_hop;
  eth.serialize_to(ctx.bytes(), 0);
  ctx.invalidate_parse();
  const auto slot = std::min<std::size_t>(backend->id, stats_.size() - 1);
  stats_.add(slot, ctx.packet().size());
  return ppe::Verdict::forward;
}

std::uint64_t LoadBalancer::packets_to(std::uint32_t backend_id) const {
  return stats_.packets(std::min<std::size_t>(backend_id, stats_.size() - 1));
}

hw::ResourceUsage LoadBalancer::resource_usage(
    const hw::DatapathConfig& datapath) const {
  using RM = hw::ResourceModel;
  const std::uint32_t w = datapath.width_bits;
  hw::ResourceUsage usage;
  usage += RM::parser(38, w);
  usage += RM::hash_unit(104);  // flow hash over the canonical 5-tuple
  // Lookup table: one 8-bit backend index per slot, LSRAM resident.
  usage.lsram_blocks += hw::lsram_blocks_for_bits(
      std::uint64_t{config_.table_size} * 8);
  usage += RM::field_edit_unit(1, w);  // MAC rewrite
  usage += RM::deparser(w);
  usage += RM::csr_block(16);
  usage += RM::stream_fifo(128, 72);
  usage += RM::stream_fifo(128, 72);
  usage += RM::control_fsm(8, w);
  usage += RM::counter_bank(max_tracked_backends * 2, 64);
  return usage;
}

std::vector<ppe::CounterSnapshot> LoadBalancer::counters() const {
  std::vector<ppe::CounterSnapshot> out;
  for (const auto& backend : backends_) {
    const auto slot =
        std::min<std::size_t>(backend.id, stats_.size() - 1);
    out.push_back(
        {"lb_stats", slot, stats_.packets(slot), stats_.bytes(slot)});
  }
  return out;
}

ppe::StageProfile LoadBalancer::profile() const {
  using ppe::HeaderKind;
  ppe::StageProfile profile;
  profile.stage = name();
  profile.reads = ppe::header_set(
      {HeaderKind::ethernet, HeaderKind::ipv4, HeaderKind::tcp,
       HeaderKind::udp});
  profile.writes = ppe::header_bit(HeaderKind::ethernet);  // next-hop MAC
  profile.tables.push_back(ppe::TableProfile{
      .name = "maglev",
      .kind = ppe::TableKind::exact_match,
      .capacity = config_.table_size,
      .key_bits = 64,  // pre-hashed canonical 5-tuple
      .value_bits = 8,
      .key_sources = ppe::header_set(
          {HeaderKind::ipv4, HeaderKind::tcp, HeaderKind::udp})});
  // Backend ids above the tracked range are clamped into the last slot.
  profile.counter_banks.push_back(
      {"lb_stats", stats_.size(), stats_.size() - 1});
  profile.pipeline_depth_cycles = pipeline_latency_cycles();
  return profile;
}

namespace {
const bool registered = ppe::register_ppe_app(
    "lb", [](net::BytesView config) -> ppe::PpeAppPtr {
      if (config.empty()) return std::make_unique<LoadBalancer>();
      const auto parsed = LoadBalancerConfig::parse(config);
      if (!parsed) return nullptr;
      return std::make_unique<LoadBalancer>(*parsed);
    });
}  // namespace

void link_lb_app() { (void)registered; }

}  // namespace flexsfp::apps
