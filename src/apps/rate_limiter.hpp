// Per-subscriber token-bucket rate limiting (§2.1: "per-subscriber policies
// such as ... basic rate-limiting must be enforced upstream" — FlexSFP
// enforces them at the port instead).
//
// Subscribers are identified by source prefix; each maps to a token bucket
// refilled from the packet timestamps (the datapath's free-running clock),
// so the limiter needs no timer interrupts.
#pragma once

#include <cstdint>

#include "net/addresses.hpp"
#include "ppe/app.hpp"
#include "ppe/counters.hpp"
#include "ppe/tables.hpp"

namespace flexsfp::apps {

struct TokenBucketSpec {
  std::uint64_t rate_bps = 100'000'000;  // sustained rate
  std::uint64_t burst_bytes = 64 * 1024;
};

struct RateLimiterConfig {
  std::uint32_t max_subscribers = 1024;
  /// Applied to traffic that matches no subscriber entry; a zero rate here
  /// means unmatched traffic is unlimited.
  TokenBucketSpec default_spec{0, 0};

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<RateLimiterConfig> parse(
      net::BytesView data);
};

class RateLimiter final : public ppe::PpeApp {
 public:
  explicit RateLimiter(RateLimiterConfig config = {});

  [[nodiscard]] std::string name() const override { return "ratelimit"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  /// Register a subscriber prefix with its bucket; false when full.
  bool add_subscriber(net::Ipv4Prefix prefix, TokenBucketSpec spec);
  bool remove_subscriber(net::Ipv4Prefix prefix);

  [[nodiscard]] std::uint64_t conformed() const { return stats_.packets(0); }
  [[nodiscard]] std::uint64_t policed() const { return stats_.packets(1); }
  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  struct Bucket {
    TokenBucketSpec spec;
    double tokens = 0;
    std::int64_t last_refill_ps = 0;
  };

  /// Refill from elapsed time, then try to spend `bytes`.
  [[nodiscard]] static bool consume(Bucket& bucket, std::int64_t now_ps,
                                    std::size_t bytes);

  RateLimiterConfig config_;
  ppe::LpmTable subscribers_;   // prefix -> bucket slot
  std::vector<Bucket> buckets_;
  std::vector<std::size_t> free_slots_;
  ppe::CounterBank stats_;  // 0 conform, 1 police-drop, 2 unmatched
};

}  // namespace flexsfp::apps
