// Monitoring & observability apps (§3): in-band telemetry stamping,
// NetFlow-like per-flow statistics with idle/active timeout export, and
// 1-in-N packet sampling to the control plane.
#pragma once

#include <cstdint>
#include <deque>

#include "net/flow.hpp"
#include "net/headers.hpp"
#include "ppe/app.hpp"
#include "ppe/counters.hpp"
#include "ppe/tables.hpp"

namespace flexsfp::apps {

/// EtherType of the L2 telemetry shim FlexSFP modules insert (local-
/// experimental range; the downstream edge strips it).
inline constexpr std::uint16_t telemetry_ether_type = 0x88b6;

/// The 12-byte in-band telemetry shim: inserted after the Ethernet header,
/// carrying the original EtherType like a VLAN tag does.
struct TelemetryShim {
  static constexpr std::size_t size() { return 12; }

  std::uint16_t device_id = 0;
  std::uint8_t ingress_port = 0;
  std::uint8_t queue_depth = 0;
  std::uint64_t timestamp_ns = 0;  // 48 bits on the wire
  std::uint16_t inner_ether_type = 0;

  [[nodiscard]] static std::optional<TelemetryShim> parse(net::BytesView data,
                                                          std::size_t offset);
  void serialize_to(net::BytesSpan data, std::size_t offset) const;
};

/// Insert a telemetry shim after the Ethernet header (returns false when
/// the frame lacks one).
bool push_telemetry_shim(net::Bytes& frame, const TelemetryShim& shim);
/// Strip a shim if present; returns the parsed shim.
std::optional<TelemetryShim> pop_telemetry_shim(net::Bytes& frame);

enum class StamperRole : std::uint8_t {
  source = 0,  // insert a shim
  sink = 1,    // strip the shim and record the measured hop latency
};

struct IntStamperConfig {
  StamperRole role = StamperRole::source;
  std::uint16_t device_id = 1;

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<IntStamperConfig> parse(
      net::BytesView data);
};

/// In-band telemetry source/sink ("in-line timestamping, labeling").
class IntStamper final : public ppe::PpeApp {
 public:
  explicit IntStamper(IntStamperConfig config = {});

  [[nodiscard]] std::string name() const override { return "int"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  [[nodiscard]] std::uint64_t stamped() const { return stats_.packets(0); }
  /// Sink side: count and sum of one-way shim latencies seen.
  [[nodiscard]] std::uint64_t sink_samples() const { return sink_samples_; }
  [[nodiscard]] double mean_path_latency_ns() const {
    return sink_samples_ > 0 ? sink_latency_sum_ns_ / double(sink_samples_)
                             : 0.0;
  }

  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  IntStamperConfig config_;
  ppe::CounterBank stats_;  // 0 stamped/stripped, 1 passed
  std::uint64_t sink_samples_ = 0;
  double sink_latency_sum_ns_ = 0;
};

/// One exported flow record (NetFlow v5-shaped).
struct FlowRecord {
  net::FiveTuple tuple;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::int64_t first_seen_ps = 0;
  std::int64_t last_seen_ps = 0;
  std::uint8_t tcp_flags_seen = 0;
};

struct FlowStatsConfig {
  std::uint32_t cache_capacity = 8192;
  /// Flows idle longer than this are exported on the next sweep.
  std::int64_t idle_timeout_ps = 15'000'000'000'000;  // 15 s
  /// Flows older than this are exported even if active.
  std::int64_t active_timeout_ps = 60'000'000'000'000;  // 60 s

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<FlowStatsConfig> parse(
      net::BytesView data);
};

/// NetFlow-like flow cache: per-flow packet/byte/timestamp accounting in the
/// datapath, periodic export sweeps by the control plane.
class FlowStats final : public ppe::PpeApp {
 public:
  explicit FlowStats(FlowStatsConfig config = {});

  [[nodiscard]] std::string name() const override { return "flowstats"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  [[nodiscard]] std::size_t active_flows() const;
  /// Remove and return flows that hit the idle/active timeouts at `now`
  /// (the control plane calls this on its export timer).
  [[nodiscard]] std::vector<FlowRecord> sweep(std::int64_t now_ps);
  /// Remove and return everything (shutdown/final export).
  [[nodiscard]] std::vector<FlowRecord> export_all();
  /// Packets that could not be tracked because the cache was full.
  [[nodiscard]] std::uint64_t cache_rejections() const { return rejections_; }

  [[nodiscard]] std::vector<ppe::CounterSnapshot> counters() const override;

 private:
  FlowStatsConfig config_;
  // Key: murmur3 of the 5-tuple -> slot into records_. The table models the
  // LSRAM structure; records_ carries the full per-flow state.
  ppe::ExactMatchTable index_;
  std::vector<FlowRecord> records_;
  std::vector<std::size_t> free_slots_;
  std::uint64_t rejections_ = 0;
  ppe::CounterBank stats_;  // 0 tracked, 1 rejected
};

struct SamplerConfig {
  std::uint32_t rate = 1000;  // 1-in-N

  [[nodiscard]] net::Bytes serialize() const;
  [[nodiscard]] static std::optional<SamplerConfig> parse(net::BytesView data);
};

/// Deterministic 1-in-N sampler: forwards everything, mirrors every Nth
/// packet to the embedded control plane for export.
class Sampler final : public ppe::PpeApp {
 public:
  explicit Sampler(SamplerConfig config = {});

  [[nodiscard]] std::string name() const override { return "sampler"; }
  [[nodiscard]] ppe::Verdict process(ppe::PacketContext& ctx) override;
  [[nodiscard]] hw::ResourceUsage resource_usage(
      const hw::DatapathConfig& datapath) const override;
  [[nodiscard]] net::Bytes serialize_config() const override {
    return config_.serialize();
  }
  [[nodiscard]] ppe::StageProfile profile() const override;

  [[nodiscard]] std::uint64_t sampled() const { return sampled_; }

 private:
  SamplerConfig config_;
  std::uint64_t counter_ = 0;
  std::uint64_t sampled_ = 0;
};

}  // namespace flexsfp::apps
