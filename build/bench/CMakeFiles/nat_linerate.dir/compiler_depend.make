# Empty compiler generated dependencies file for nat_linerate.
# This may be replaced when dependencies are built.
