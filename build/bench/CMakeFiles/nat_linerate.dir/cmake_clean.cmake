file(REMOVE_RECURSE
  "CMakeFiles/nat_linerate.dir/nat_linerate.cpp.o"
  "CMakeFiles/nat_linerate.dir/nat_linerate.cpp.o.d"
  "nat_linerate"
  "nat_linerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_linerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
