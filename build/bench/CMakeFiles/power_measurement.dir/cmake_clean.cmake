file(REMOVE_RECURSE
  "CMakeFiles/power_measurement.dir/power_measurement.cpp.o"
  "CMakeFiles/power_measurement.dir/power_measurement.cpp.o.d"
  "power_measurement"
  "power_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
