# Empty compiler generated dependencies file for power_measurement.
# This may be replaced when dependencies are built.
