
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_nat_resources.cpp" "bench/CMakeFiles/table1_nat_resources.dir/table1_nat_resources.cpp.o" "gcc" "bench/CMakeFiles/table1_nat_resources.dir/table1_nat_resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/flexsfp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sfp/CMakeFiles/flexsfp_sfp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/flexsfp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ppe/CMakeFiles/flexsfp_ppe.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/flexsfp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexsfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flexsfp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
