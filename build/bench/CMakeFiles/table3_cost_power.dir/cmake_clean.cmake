file(REMOVE_RECURSE
  "CMakeFiles/table3_cost_power.dir/table3_cost_power.cpp.o"
  "CMakeFiles/table3_cost_power.dir/table3_cost_power.cpp.o.d"
  "table3_cost_power"
  "table3_cost_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cost_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
