file(REMOVE_RECURSE
  "CMakeFiles/scalability_sweep.dir/scalability_sweep.cpp.o"
  "CMakeFiles/scalability_sweep.dir/scalability_sweep.cpp.o.d"
  "scalability_sweep"
  "scalability_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
