file(REMOVE_RECURSE
  "CMakeFiles/table2_design_fit.dir/table2_design_fit.cpp.o"
  "CMakeFiles/table2_design_fit.dir/table2_design_fit.cpp.o.d"
  "table2_design_fit"
  "table2_design_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_design_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
