# Empty compiler generated dependencies file for table2_design_fit.
# This may be replaced when dependencies are built.
