file(REMOVE_RECURSE
  "CMakeFiles/chain_depth.dir/chain_depth.cpp.o"
  "CMakeFiles/chain_depth.dir/chain_depth.cpp.o.d"
  "chain_depth"
  "chain_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
