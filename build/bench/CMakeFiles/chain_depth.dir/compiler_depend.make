# Empty compiler generated dependencies file for chain_depth.
# This may be replaced when dependencies are built.
