file(REMOVE_RECURSE
  "CMakeFiles/table_scaling.dir/table_scaling.cpp.o"
  "CMakeFiles/table_scaling.dir/table_scaling.cpp.o.d"
  "table_scaling"
  "table_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
