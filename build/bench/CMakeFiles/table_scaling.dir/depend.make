# Empty dependencies file for table_scaling.
# This may be replaced when dependencies are built.
