file(REMOVE_RECURSE
  "CMakeFiles/fig1_architectures.dir/fig1_architectures.cpp.o"
  "CMakeFiles/fig1_architectures.dir/fig1_architectures.cpp.o.d"
  "fig1_architectures"
  "fig1_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
