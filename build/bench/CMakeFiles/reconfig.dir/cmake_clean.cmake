file(REMOVE_RECURSE
  "CMakeFiles/reconfig.dir/reconfig.cpp.o"
  "CMakeFiles/reconfig.dir/reconfig.cpp.o.d"
  "reconfig"
  "reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
