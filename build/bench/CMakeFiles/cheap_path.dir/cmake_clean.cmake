file(REMOVE_RECURSE
  "CMakeFiles/cheap_path.dir/cheap_path.cpp.o"
  "CMakeFiles/cheap_path.dir/cheap_path.cpp.o.d"
  "cheap_path"
  "cheap_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheap_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
