# Empty compiler generated dependencies file for cheap_path.
# This may be replaced when dependencies are built.
