file(REMOVE_RECURSE
  "CMakeFiles/fleet_orchestration.dir/fleet_orchestration.cpp.o"
  "CMakeFiles/fleet_orchestration.dir/fleet_orchestration.cpp.o.d"
  "fleet_orchestration"
  "fleet_orchestration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_orchestration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
