# Empty compiler generated dependencies file for fleet_orchestration.
# This may be replaced when dependencies are built.
