file(REMOVE_RECURSE
  "CMakeFiles/legacy_switch_retrofit.dir/legacy_switch_retrofit.cpp.o"
  "CMakeFiles/legacy_switch_retrofit.dir/legacy_switch_retrofit.cpp.o.d"
  "legacy_switch_retrofit"
  "legacy_switch_retrofit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_switch_retrofit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
