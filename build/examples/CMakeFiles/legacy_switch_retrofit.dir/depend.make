# Empty dependencies file for legacy_switch_retrofit.
# This may be replaced when dependencies are built.
