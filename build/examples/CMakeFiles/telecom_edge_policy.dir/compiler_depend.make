# Empty compiler generated dependencies file for telecom_edge_policy.
# This may be replaced when dependencies are built.
