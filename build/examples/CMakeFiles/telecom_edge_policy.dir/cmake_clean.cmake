file(REMOVE_RECURSE
  "CMakeFiles/telecom_edge_policy.dir/telecom_edge_policy.cpp.o"
  "CMakeFiles/telecom_edge_policy.dir/telecom_edge_policy.cpp.o.d"
  "telecom_edge_policy"
  "telecom_edge_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telecom_edge_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
