file(REMOVE_RECURSE
  "CMakeFiles/optical_load_balancer.dir/optical_load_balancer.cpp.o"
  "CMakeFiles/optical_load_balancer.dir/optical_load_balancer.cpp.o.d"
  "optical_load_balancer"
  "optical_load_balancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optical_load_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
