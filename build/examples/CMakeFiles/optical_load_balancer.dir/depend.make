# Empty dependencies file for optical_load_balancer.
# This may be replaced when dependencies are built.
