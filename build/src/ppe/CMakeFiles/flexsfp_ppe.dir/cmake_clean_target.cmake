file(REMOVE_RECURSE
  "libflexsfp_ppe.a"
)
