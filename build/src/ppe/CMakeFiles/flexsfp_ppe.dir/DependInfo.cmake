
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppe/app.cpp" "src/ppe/CMakeFiles/flexsfp_ppe.dir/app.cpp.o" "gcc" "src/ppe/CMakeFiles/flexsfp_ppe.dir/app.cpp.o.d"
  "/root/repo/src/ppe/counters.cpp" "src/ppe/CMakeFiles/flexsfp_ppe.dir/counters.cpp.o" "gcc" "src/ppe/CMakeFiles/flexsfp_ppe.dir/counters.cpp.o.d"
  "/root/repo/src/ppe/engine.cpp" "src/ppe/CMakeFiles/flexsfp_ppe.dir/engine.cpp.o" "gcc" "src/ppe/CMakeFiles/flexsfp_ppe.dir/engine.cpp.o.d"
  "/root/repo/src/ppe/registry.cpp" "src/ppe/CMakeFiles/flexsfp_ppe.dir/registry.cpp.o" "gcc" "src/ppe/CMakeFiles/flexsfp_ppe.dir/registry.cpp.o.d"
  "/root/repo/src/ppe/tables.cpp" "src/ppe/CMakeFiles/flexsfp_ppe.dir/tables.cpp.o" "gcc" "src/ppe/CMakeFiles/flexsfp_ppe.dir/tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/flexsfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexsfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/flexsfp_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
