# Empty dependencies file for flexsfp_ppe.
# This may be replaced when dependencies are built.
