file(REMOVE_RECURSE
  "CMakeFiles/flexsfp_ppe.dir/app.cpp.o"
  "CMakeFiles/flexsfp_ppe.dir/app.cpp.o.d"
  "CMakeFiles/flexsfp_ppe.dir/counters.cpp.o"
  "CMakeFiles/flexsfp_ppe.dir/counters.cpp.o.d"
  "CMakeFiles/flexsfp_ppe.dir/engine.cpp.o"
  "CMakeFiles/flexsfp_ppe.dir/engine.cpp.o.d"
  "CMakeFiles/flexsfp_ppe.dir/registry.cpp.o"
  "CMakeFiles/flexsfp_ppe.dir/registry.cpp.o.d"
  "CMakeFiles/flexsfp_ppe.dir/tables.cpp.o"
  "CMakeFiles/flexsfp_ppe.dir/tables.cpp.o.d"
  "libflexsfp_ppe.a"
  "libflexsfp_ppe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsfp_ppe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
