file(REMOVE_RECURSE
  "CMakeFiles/flexsfp_fabric.dir/baselines.cpp.o"
  "CMakeFiles/flexsfp_fabric.dir/baselines.cpp.o.d"
  "CMakeFiles/flexsfp_fabric.dir/legacy_switch.cpp.o"
  "CMakeFiles/flexsfp_fabric.dir/legacy_switch.cpp.o.d"
  "CMakeFiles/flexsfp_fabric.dir/orchestrator.cpp.o"
  "CMakeFiles/flexsfp_fabric.dir/orchestrator.cpp.o.d"
  "CMakeFiles/flexsfp_fabric.dir/testbed.cpp.o"
  "CMakeFiles/flexsfp_fabric.dir/testbed.cpp.o.d"
  "CMakeFiles/flexsfp_fabric.dir/traffic_gen.cpp.o"
  "CMakeFiles/flexsfp_fabric.dir/traffic_gen.cpp.o.d"
  "libflexsfp_fabric.a"
  "libflexsfp_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsfp_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
