file(REMOVE_RECURSE
  "libflexsfp_fabric.a"
)
