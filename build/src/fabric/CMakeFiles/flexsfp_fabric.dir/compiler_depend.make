# Empty compiler generated dependencies file for flexsfp_fabric.
# This may be replaced when dependencies are built.
