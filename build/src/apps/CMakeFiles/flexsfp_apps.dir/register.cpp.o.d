src/apps/CMakeFiles/flexsfp_apps.dir/register.cpp.o: \
 /root/repo/src/apps/register.cpp /usr/include/stdc-predef.h \
 /root/repo/src/apps/register.hpp
