file(REMOVE_RECURSE
  "libflexsfp_apps.a"
)
