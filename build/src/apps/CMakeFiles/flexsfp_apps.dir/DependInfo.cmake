
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/acl.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/acl.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/acl.cpp.o.d"
  "/root/repo/src/apps/bpf_filter.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/bpf_filter.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/bpf_filter.cpp.o.d"
  "/root/repo/src/apps/chain.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/chain.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/chain.cpp.o.d"
  "/root/repo/src/apps/fault_monitor.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/fault_monitor.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/fault_monitor.cpp.o.d"
  "/root/repo/src/apps/ipv6_filter.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/ipv6_filter.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/ipv6_filter.cpp.o.d"
  "/root/repo/src/apps/load_balancer.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/load_balancer.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/load_balancer.cpp.o.d"
  "/root/repo/src/apps/nat.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/nat.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/nat.cpp.o.d"
  "/root/repo/src/apps/rate_limiter.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/rate_limiter.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/rate_limiter.cpp.o.d"
  "/root/repo/src/apps/register.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/register.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/register.cpp.o.d"
  "/root/repo/src/apps/sanitizer.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/sanitizer.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/sanitizer.cpp.o.d"
  "/root/repo/src/apps/telemetry.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/telemetry.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/telemetry.cpp.o.d"
  "/root/repo/src/apps/tunnel.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/tunnel.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/tunnel.cpp.o.d"
  "/root/repo/src/apps/vlan.cpp" "src/apps/CMakeFiles/flexsfp_apps.dir/vlan.cpp.o" "gcc" "src/apps/CMakeFiles/flexsfp_apps.dir/vlan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppe/CMakeFiles/flexsfp_ppe.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/flexsfp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flexsfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexsfp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
