# Empty compiler generated dependencies file for flexsfp_apps.
# This may be replaced when dependencies are built.
