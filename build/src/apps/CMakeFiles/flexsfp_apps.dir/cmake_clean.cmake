file(REMOVE_RECURSE
  "CMakeFiles/flexsfp_apps.dir/acl.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/acl.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/bpf_filter.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/bpf_filter.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/chain.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/chain.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/fault_monitor.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/fault_monitor.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/ipv6_filter.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/ipv6_filter.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/load_balancer.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/load_balancer.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/nat.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/nat.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/rate_limiter.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/register.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/register.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/sanitizer.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/sanitizer.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/telemetry.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/telemetry.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/tunnel.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/tunnel.cpp.o.d"
  "CMakeFiles/flexsfp_apps.dir/vlan.cpp.o"
  "CMakeFiles/flexsfp_apps.dir/vlan.cpp.o.d"
  "libflexsfp_apps.a"
  "libflexsfp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsfp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
