file(REMOVE_RECURSE
  "CMakeFiles/flexsfp_sfp.dir/arbiter.cpp.o"
  "CMakeFiles/flexsfp_sfp.dir/arbiter.cpp.o.d"
  "CMakeFiles/flexsfp_sfp.dir/control_plane.cpp.o"
  "CMakeFiles/flexsfp_sfp.dir/control_plane.cpp.o.d"
  "CMakeFiles/flexsfp_sfp.dir/exporter.cpp.o"
  "CMakeFiles/flexsfp_sfp.dir/exporter.cpp.o.d"
  "CMakeFiles/flexsfp_sfp.dir/flexsfp.cpp.o"
  "CMakeFiles/flexsfp_sfp.dir/flexsfp.cpp.o.d"
  "CMakeFiles/flexsfp_sfp.dir/mgmt_protocol.cpp.o"
  "CMakeFiles/flexsfp_sfp.dir/mgmt_protocol.cpp.o.d"
  "CMakeFiles/flexsfp_sfp.dir/shell.cpp.o"
  "CMakeFiles/flexsfp_sfp.dir/shell.cpp.o.d"
  "CMakeFiles/flexsfp_sfp.dir/standard_sfp.cpp.o"
  "CMakeFiles/flexsfp_sfp.dir/standard_sfp.cpp.o.d"
  "CMakeFiles/flexsfp_sfp.dir/vcsel.cpp.o"
  "CMakeFiles/flexsfp_sfp.dir/vcsel.cpp.o.d"
  "libflexsfp_sfp.a"
  "libflexsfp_sfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsfp_sfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
