file(REMOVE_RECURSE
  "libflexsfp_sfp.a"
)
