
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfp/arbiter.cpp" "src/sfp/CMakeFiles/flexsfp_sfp.dir/arbiter.cpp.o" "gcc" "src/sfp/CMakeFiles/flexsfp_sfp.dir/arbiter.cpp.o.d"
  "/root/repo/src/sfp/control_plane.cpp" "src/sfp/CMakeFiles/flexsfp_sfp.dir/control_plane.cpp.o" "gcc" "src/sfp/CMakeFiles/flexsfp_sfp.dir/control_plane.cpp.o.d"
  "/root/repo/src/sfp/exporter.cpp" "src/sfp/CMakeFiles/flexsfp_sfp.dir/exporter.cpp.o" "gcc" "src/sfp/CMakeFiles/flexsfp_sfp.dir/exporter.cpp.o.d"
  "/root/repo/src/sfp/flexsfp.cpp" "src/sfp/CMakeFiles/flexsfp_sfp.dir/flexsfp.cpp.o" "gcc" "src/sfp/CMakeFiles/flexsfp_sfp.dir/flexsfp.cpp.o.d"
  "/root/repo/src/sfp/mgmt_protocol.cpp" "src/sfp/CMakeFiles/flexsfp_sfp.dir/mgmt_protocol.cpp.o" "gcc" "src/sfp/CMakeFiles/flexsfp_sfp.dir/mgmt_protocol.cpp.o.d"
  "/root/repo/src/sfp/shell.cpp" "src/sfp/CMakeFiles/flexsfp_sfp.dir/shell.cpp.o" "gcc" "src/sfp/CMakeFiles/flexsfp_sfp.dir/shell.cpp.o.d"
  "/root/repo/src/sfp/standard_sfp.cpp" "src/sfp/CMakeFiles/flexsfp_sfp.dir/standard_sfp.cpp.o" "gcc" "src/sfp/CMakeFiles/flexsfp_sfp.dir/standard_sfp.cpp.o.d"
  "/root/repo/src/sfp/vcsel.cpp" "src/sfp/CMakeFiles/flexsfp_sfp.dir/vcsel.cpp.o" "gcc" "src/sfp/CMakeFiles/flexsfp_sfp.dir/vcsel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppe/CMakeFiles/flexsfp_ppe.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/flexsfp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/flexsfp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flexsfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexsfp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
