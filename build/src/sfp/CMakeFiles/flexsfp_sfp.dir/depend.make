# Empty dependencies file for flexsfp_sfp.
# This may be replaced when dependencies are built.
