
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/bitstream.cpp" "src/hw/CMakeFiles/flexsfp_hw.dir/bitstream.cpp.o" "gcc" "src/hw/CMakeFiles/flexsfp_hw.dir/bitstream.cpp.o.d"
  "/root/repo/src/hw/clock.cpp" "src/hw/CMakeFiles/flexsfp_hw.dir/clock.cpp.o" "gcc" "src/hw/CMakeFiles/flexsfp_hw.dir/clock.cpp.o.d"
  "/root/repo/src/hw/cost_model.cpp" "src/hw/CMakeFiles/flexsfp_hw.dir/cost_model.cpp.o" "gcc" "src/hw/CMakeFiles/flexsfp_hw.dir/cost_model.cpp.o.d"
  "/root/repo/src/hw/design_catalog.cpp" "src/hw/CMakeFiles/flexsfp_hw.dir/design_catalog.cpp.o" "gcc" "src/hw/CMakeFiles/flexsfp_hw.dir/design_catalog.cpp.o.d"
  "/root/repo/src/hw/device.cpp" "src/hw/CMakeFiles/flexsfp_hw.dir/device.cpp.o" "gcc" "src/hw/CMakeFiles/flexsfp_hw.dir/device.cpp.o.d"
  "/root/repo/src/hw/form_factor.cpp" "src/hw/CMakeFiles/flexsfp_hw.dir/form_factor.cpp.o" "gcc" "src/hw/CMakeFiles/flexsfp_hw.dir/form_factor.cpp.o.d"
  "/root/repo/src/hw/power_model.cpp" "src/hw/CMakeFiles/flexsfp_hw.dir/power_model.cpp.o" "gcc" "src/hw/CMakeFiles/flexsfp_hw.dir/power_model.cpp.o.d"
  "/root/repo/src/hw/resource_model.cpp" "src/hw/CMakeFiles/flexsfp_hw.dir/resource_model.cpp.o" "gcc" "src/hw/CMakeFiles/flexsfp_hw.dir/resource_model.cpp.o.d"
  "/root/repo/src/hw/resources.cpp" "src/hw/CMakeFiles/flexsfp_hw.dir/resources.cpp.o" "gcc" "src/hw/CMakeFiles/flexsfp_hw.dir/resources.cpp.o.d"
  "/root/repo/src/hw/spi_flash.cpp" "src/hw/CMakeFiles/flexsfp_hw.dir/spi_flash.cpp.o" "gcc" "src/hw/CMakeFiles/flexsfp_hw.dir/spi_flash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/flexsfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexsfp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
