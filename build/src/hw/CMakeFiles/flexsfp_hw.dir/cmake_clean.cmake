file(REMOVE_RECURSE
  "CMakeFiles/flexsfp_hw.dir/bitstream.cpp.o"
  "CMakeFiles/flexsfp_hw.dir/bitstream.cpp.o.d"
  "CMakeFiles/flexsfp_hw.dir/clock.cpp.o"
  "CMakeFiles/flexsfp_hw.dir/clock.cpp.o.d"
  "CMakeFiles/flexsfp_hw.dir/cost_model.cpp.o"
  "CMakeFiles/flexsfp_hw.dir/cost_model.cpp.o.d"
  "CMakeFiles/flexsfp_hw.dir/design_catalog.cpp.o"
  "CMakeFiles/flexsfp_hw.dir/design_catalog.cpp.o.d"
  "CMakeFiles/flexsfp_hw.dir/device.cpp.o"
  "CMakeFiles/flexsfp_hw.dir/device.cpp.o.d"
  "CMakeFiles/flexsfp_hw.dir/form_factor.cpp.o"
  "CMakeFiles/flexsfp_hw.dir/form_factor.cpp.o.d"
  "CMakeFiles/flexsfp_hw.dir/power_model.cpp.o"
  "CMakeFiles/flexsfp_hw.dir/power_model.cpp.o.d"
  "CMakeFiles/flexsfp_hw.dir/resource_model.cpp.o"
  "CMakeFiles/flexsfp_hw.dir/resource_model.cpp.o.d"
  "CMakeFiles/flexsfp_hw.dir/resources.cpp.o"
  "CMakeFiles/flexsfp_hw.dir/resources.cpp.o.d"
  "CMakeFiles/flexsfp_hw.dir/spi_flash.cpp.o"
  "CMakeFiles/flexsfp_hw.dir/spi_flash.cpp.o.d"
  "libflexsfp_hw.a"
  "libflexsfp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsfp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
