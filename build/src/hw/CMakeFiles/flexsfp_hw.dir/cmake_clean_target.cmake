file(REMOVE_RECURSE
  "libflexsfp_hw.a"
)
