# Empty dependencies file for flexsfp_hw.
# This may be replaced when dependencies are built.
