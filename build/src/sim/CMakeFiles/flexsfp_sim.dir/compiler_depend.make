# Empty compiler generated dependencies file for flexsfp_sim.
# This may be replaced when dependencies are built.
