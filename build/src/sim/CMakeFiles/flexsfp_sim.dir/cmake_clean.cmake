file(REMOVE_RECURSE
  "CMakeFiles/flexsfp_sim.dir/link.cpp.o"
  "CMakeFiles/flexsfp_sim.dir/link.cpp.o.d"
  "CMakeFiles/flexsfp_sim.dir/random.cpp.o"
  "CMakeFiles/flexsfp_sim.dir/random.cpp.o.d"
  "CMakeFiles/flexsfp_sim.dir/simulation.cpp.o"
  "CMakeFiles/flexsfp_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/flexsfp_sim.dir/stats.cpp.o"
  "CMakeFiles/flexsfp_sim.dir/stats.cpp.o.d"
  "CMakeFiles/flexsfp_sim.dir/time.cpp.o"
  "CMakeFiles/flexsfp_sim.dir/time.cpp.o.d"
  "libflexsfp_sim.a"
  "libflexsfp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsfp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
