file(REMOVE_RECURSE
  "libflexsfp_sim.a"
)
