file(REMOVE_RECURSE
  "libflexsfp_net.a"
)
