# Empty dependencies file for flexsfp_net.
# This may be replaced when dependencies are built.
