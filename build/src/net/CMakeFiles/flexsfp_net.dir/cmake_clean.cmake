file(REMOVE_RECURSE
  "CMakeFiles/flexsfp_net.dir/addresses.cpp.o"
  "CMakeFiles/flexsfp_net.dir/addresses.cpp.o.d"
  "CMakeFiles/flexsfp_net.dir/builder.cpp.o"
  "CMakeFiles/flexsfp_net.dir/builder.cpp.o.d"
  "CMakeFiles/flexsfp_net.dir/bytes.cpp.o"
  "CMakeFiles/flexsfp_net.dir/bytes.cpp.o.d"
  "CMakeFiles/flexsfp_net.dir/checksum.cpp.o"
  "CMakeFiles/flexsfp_net.dir/checksum.cpp.o.d"
  "CMakeFiles/flexsfp_net.dir/flow.cpp.o"
  "CMakeFiles/flexsfp_net.dir/flow.cpp.o.d"
  "CMakeFiles/flexsfp_net.dir/headers.cpp.o"
  "CMakeFiles/flexsfp_net.dir/headers.cpp.o.d"
  "CMakeFiles/flexsfp_net.dir/parser.cpp.o"
  "CMakeFiles/flexsfp_net.dir/parser.cpp.o.d"
  "CMakeFiles/flexsfp_net.dir/pcap.cpp.o"
  "CMakeFiles/flexsfp_net.dir/pcap.cpp.o.d"
  "libflexsfp_net.a"
  "libflexsfp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexsfp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
