# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_net[1]_include.cmake")
include("/root/repo/build/tests/tests_sim[1]_include.cmake")
include("/root/repo/build/tests/tests_hw[1]_include.cmake")
include("/root/repo/build/tests/tests_ppe[1]_include.cmake")
include("/root/repo/build/tests/tests_apps[1]_include.cmake")
include("/root/repo/build/tests/tests_sfp[1]_include.cmake")
include("/root/repo/build/tests/tests_fabric[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
include("/root/repo/build/tests/tests_property[1]_include.cmake")
