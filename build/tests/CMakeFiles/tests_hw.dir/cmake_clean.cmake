file(REMOVE_RECURSE
  "CMakeFiles/tests_hw.dir/hw/test_bitstream_flash.cpp.o"
  "CMakeFiles/tests_hw.dir/hw/test_bitstream_flash.cpp.o.d"
  "CMakeFiles/tests_hw.dir/hw/test_clock.cpp.o"
  "CMakeFiles/tests_hw.dir/hw/test_clock.cpp.o.d"
  "CMakeFiles/tests_hw.dir/hw/test_device.cpp.o"
  "CMakeFiles/tests_hw.dir/hw/test_device.cpp.o.d"
  "CMakeFiles/tests_hw.dir/hw/test_form_factor.cpp.o"
  "CMakeFiles/tests_hw.dir/hw/test_form_factor.cpp.o.d"
  "CMakeFiles/tests_hw.dir/hw/test_power_cost.cpp.o"
  "CMakeFiles/tests_hw.dir/hw/test_power_cost.cpp.o.d"
  "CMakeFiles/tests_hw.dir/hw/test_resources.cpp.o"
  "CMakeFiles/tests_hw.dir/hw/test_resources.cpp.o.d"
  "tests_hw"
  "tests_hw.pdb"
  "tests_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
