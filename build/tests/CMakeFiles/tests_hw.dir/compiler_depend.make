# Empty compiler generated dependencies file for tests_hw.
# This may be replaced when dependencies are built.
