# Empty compiler generated dependencies file for tests_sfp.
# This may be replaced when dependencies are built.
