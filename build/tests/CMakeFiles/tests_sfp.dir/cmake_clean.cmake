file(REMOVE_RECURSE
  "CMakeFiles/tests_sfp.dir/sfp/test_active_cp.cpp.o"
  "CMakeFiles/tests_sfp.dir/sfp/test_active_cp.cpp.o.d"
  "CMakeFiles/tests_sfp.dir/sfp/test_control_plane.cpp.o"
  "CMakeFiles/tests_sfp.dir/sfp/test_control_plane.cpp.o.d"
  "CMakeFiles/tests_sfp.dir/sfp/test_mgmt.cpp.o"
  "CMakeFiles/tests_sfp.dir/sfp/test_mgmt.cpp.o.d"
  "CMakeFiles/tests_sfp.dir/sfp/test_module.cpp.o"
  "CMakeFiles/tests_sfp.dir/sfp/test_module.cpp.o.d"
  "CMakeFiles/tests_sfp.dir/sfp/test_reconfig.cpp.o"
  "CMakeFiles/tests_sfp.dir/sfp/test_reconfig.cpp.o.d"
  "CMakeFiles/tests_sfp.dir/sfp/test_shell.cpp.o"
  "CMakeFiles/tests_sfp.dir/sfp/test_shell.cpp.o.d"
  "CMakeFiles/tests_sfp.dir/sfp/test_vcsel.cpp.o"
  "CMakeFiles/tests_sfp.dir/sfp/test_vcsel.cpp.o.d"
  "tests_sfp"
  "tests_sfp.pdb"
  "tests_sfp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_sfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
