file(REMOVE_RECURSE
  "CMakeFiles/tests_property.dir/property/prop_apps.cpp.o"
  "CMakeFiles/tests_property.dir/property/prop_apps.cpp.o.d"
  "CMakeFiles/tests_property.dir/property/prop_checksum.cpp.o"
  "CMakeFiles/tests_property.dir/property/prop_checksum.cpp.o.d"
  "CMakeFiles/tests_property.dir/property/prop_linerate.cpp.o"
  "CMakeFiles/tests_property.dir/property/prop_linerate.cpp.o.d"
  "CMakeFiles/tests_property.dir/property/prop_roundtrip.cpp.o"
  "CMakeFiles/tests_property.dir/property/prop_roundtrip.cpp.o.d"
  "CMakeFiles/tests_property.dir/property/prop_tables.cpp.o"
  "CMakeFiles/tests_property.dir/property/prop_tables.cpp.o.d"
  "tests_property"
  "tests_property.pdb"
  "tests_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
