# Empty dependencies file for tests_fabric.
# This may be replaced when dependencies are built.
