file(REMOVE_RECURSE
  "CMakeFiles/tests_fabric.dir/fabric/test_baselines.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/test_baselines.cpp.o.d"
  "CMakeFiles/tests_fabric.dir/fabric/test_orchestrator.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/test_orchestrator.cpp.o.d"
  "CMakeFiles/tests_fabric.dir/fabric/test_switch.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/test_switch.cpp.o.d"
  "CMakeFiles/tests_fabric.dir/fabric/test_testbed.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/test_testbed.cpp.o.d"
  "CMakeFiles/tests_fabric.dir/fabric/test_traffic.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/test_traffic.cpp.o.d"
  "tests_fabric"
  "tests_fabric.pdb"
  "tests_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
