# Empty compiler generated dependencies file for tests_ppe.
# This may be replaced when dependencies are built.
