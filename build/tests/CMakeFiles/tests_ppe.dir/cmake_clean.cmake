file(REMOVE_RECURSE
  "CMakeFiles/tests_ppe.dir/ppe/test_counters.cpp.o"
  "CMakeFiles/tests_ppe.dir/ppe/test_counters.cpp.o.d"
  "CMakeFiles/tests_ppe.dir/ppe/test_engine.cpp.o"
  "CMakeFiles/tests_ppe.dir/ppe/test_engine.cpp.o.d"
  "CMakeFiles/tests_ppe.dir/ppe/test_registry.cpp.o"
  "CMakeFiles/tests_ppe.dir/ppe/test_registry.cpp.o.d"
  "CMakeFiles/tests_ppe.dir/ppe/test_tables.cpp.o"
  "CMakeFiles/tests_ppe.dir/ppe/test_tables.cpp.o.d"
  "tests_ppe"
  "tests_ppe.pdb"
  "tests_ppe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ppe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
