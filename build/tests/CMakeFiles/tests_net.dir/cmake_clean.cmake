file(REMOVE_RECURSE
  "CMakeFiles/tests_net.dir/net/test_addresses.cpp.o"
  "CMakeFiles/tests_net.dir/net/test_addresses.cpp.o.d"
  "CMakeFiles/tests_net.dir/net/test_builder.cpp.o"
  "CMakeFiles/tests_net.dir/net/test_builder.cpp.o.d"
  "CMakeFiles/tests_net.dir/net/test_bytes.cpp.o"
  "CMakeFiles/tests_net.dir/net/test_bytes.cpp.o.d"
  "CMakeFiles/tests_net.dir/net/test_checksum.cpp.o"
  "CMakeFiles/tests_net.dir/net/test_checksum.cpp.o.d"
  "CMakeFiles/tests_net.dir/net/test_flow.cpp.o"
  "CMakeFiles/tests_net.dir/net/test_flow.cpp.o.d"
  "CMakeFiles/tests_net.dir/net/test_headers.cpp.o"
  "CMakeFiles/tests_net.dir/net/test_headers.cpp.o.d"
  "CMakeFiles/tests_net.dir/net/test_parser.cpp.o"
  "CMakeFiles/tests_net.dir/net/test_parser.cpp.o.d"
  "CMakeFiles/tests_net.dir/net/test_pcap.cpp.o"
  "CMakeFiles/tests_net.dir/net/test_pcap.cpp.o.d"
  "tests_net"
  "tests_net.pdb"
  "tests_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
