
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/test_acl.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_acl.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_acl.cpp.o.d"
  "/root/repo/tests/apps/test_bpf.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_bpf.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_bpf.cpp.o.d"
  "/root/repo/tests/apps/test_chain.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_chain.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_chain.cpp.o.d"
  "/root/repo/tests/apps/test_faultmon.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_faultmon.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_faultmon.cpp.o.d"
  "/root/repo/tests/apps/test_ipv6_filter.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_ipv6_filter.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_ipv6_filter.cpp.o.d"
  "/root/repo/tests/apps/test_lb.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_lb.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_lb.cpp.o.d"
  "/root/repo/tests/apps/test_nat.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_nat.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_nat.cpp.o.d"
  "/root/repo/tests/apps/test_ratelimit.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_ratelimit.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_ratelimit.cpp.o.d"
  "/root/repo/tests/apps/test_sanitizer.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_sanitizer.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_sanitizer.cpp.o.d"
  "/root/repo/tests/apps/test_telemetry.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_telemetry.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_telemetry.cpp.o.d"
  "/root/repo/tests/apps/test_tunnel.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_tunnel.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_tunnel.cpp.o.d"
  "/root/repo/tests/apps/test_vlan.cpp" "tests/CMakeFiles/tests_apps.dir/apps/test_vlan.cpp.o" "gcc" "tests/CMakeFiles/tests_apps.dir/apps/test_vlan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/flexsfp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sfp/CMakeFiles/flexsfp_sfp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/flexsfp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ppe/CMakeFiles/flexsfp_ppe.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/flexsfp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexsfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flexsfp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
