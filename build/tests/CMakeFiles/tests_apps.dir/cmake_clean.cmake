file(REMOVE_RECURSE
  "CMakeFiles/tests_apps.dir/apps/test_acl.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_acl.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_bpf.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_bpf.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_chain.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_chain.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_faultmon.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_faultmon.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_ipv6_filter.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_ipv6_filter.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_lb.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_lb.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_nat.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_nat.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_ratelimit.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_ratelimit.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_sanitizer.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_sanitizer.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_telemetry.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_telemetry.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_tunnel.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_tunnel.cpp.o.d"
  "CMakeFiles/tests_apps.dir/apps/test_vlan.cpp.o"
  "CMakeFiles/tests_apps.dir/apps/test_vlan.cpp.o.d"
  "tests_apps"
  "tests_apps.pdb"
  "tests_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
